package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/tag"
)

// admissionServer builds a server over the items catalog with a short
// admission bound, suitable for deterministic overload drills.
func admissionServer(t *testing.T, opts Options) *Server {
	t.Helper()
	g, err := tag.Build(itemsCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return New(g, opts)
}

// TestCanceledQueryReleasesCleanly: a query whose context expires
// mid-execution counts Canceled (not Errors), leaves InFlight at 0,
// and returns its pooled session — the very next query reuses it.
func TestCanceledQueryReleasesCleanly(t *testing.T) {
	srv := admissionServer(t, Options{Sessions: 1})

	orig := runSession
	runSession = func(sess *core.Session, ctx context.Context, an *sql.Analysis) (*relation.Relation, error) {
		<-ctx.Done() // park mid-execution until the deadline fires
		return nil, fmt.Errorf("core: query aborted: %w", ctx.Err())
	}
	defer func() { runSession = orig }()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := srv.QueryContext(ctx, "SELECT COUNT(*) FROM items"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadlined query returned %v, want DeadlineExceeded", err)
	}

	st := srv.Stats()
	if st.Canceled != 1 || st.Errors != 0 || st.Rejected != 0 {
		t.Errorf("canceled/errors/rejected = %d/%d/%d, want 1/0/0", st.Canceled, st.Errors, st.Rejected)
	}
	if st.InFlight != 0 {
		t.Errorf("InFlight = %d, want 0 (canceled query leaked its slot)", st.InFlight)
	}

	// The session came back to the pool: the next query reuses it rather
	// than building a second one.
	runSession = orig
	if _, err := srv.Query("SELECT COUNT(*) FROM items"); err != nil {
		t.Fatal(err)
	}
	if created := srv.Generation().Pool().Created(); created != 1 {
		t.Errorf("pool built %d sessions, want 1 (canceled query's session not reused)", created)
	}
}

// TestAdmissionRejectsWhenPoolExhausted: with the only session held
// past the bounded wait, queries are refused with ErrOverloaded and
// counted as Rejected; HTTP turns the refusal into 429 + Retry-After;
// a deadline shorter than the wait surfaces as cancellation (408)
// instead. Releasing the session restores service.
func TestAdmissionRejectsWhenPoolExhausted(t *testing.T) {
	srv := admissionServer(t, Options{Sessions: 1, AdmitWait: 25 * time.Millisecond})
	ts := httptest.NewServer(Handler(srv))
	defer ts.Close()

	pool := srv.Generation().Pool()
	sess := pool.Acquire()

	if _, err := srv.Query("SELECT COUNT(*) FROM items"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("query on exhausted pool returned %v, want ErrOverloaded", err)
	}

	resp, err := ts.Client().Get(ts.URL + "/query?sql=SELECT%20COUNT(*)%20FROM%20items")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("overloaded /query status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}

	// A client deadline tighter than the admission wait gives up first:
	// that is a cancellation (408), not an overload refusal.
	resp, err = ts.Client().Get(ts.URL + "/query?sql=SELECT%20COUNT(*)%20FROM%20items&deadline_ms=5")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Errorf("deadlined /query status = %d, want 408", resp.StatusCode)
	}

	st := srv.Stats()
	if st.Rejected != 2 || st.Canceled != 1 {
		t.Errorf("rejected/canceled = %d/%d, want 2/1", st.Rejected, st.Canceled)
	}
	if st.InFlight != 0 {
		t.Errorf("InFlight = %d, want 0", st.InFlight)
	}

	pool.Release(sess)
	resp, err = ts.Client().Get(ts.URL + "/query?sql=SELECT%20COUNT(*)%20FROM%20items")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-release /query status = %d, want 200", resp.StatusCode)
	}
}

// TestWriteQueueRejectsWhenFull: with the single write-queue slot held
// by a write parked inside its publish cycle, a second write is refused
// with ErrOverloaded after the bounded wait (WriteRejected counts it,
// and HTTP answers 429 + Retry-After); the parked write then completes
// untouched.
func TestWriteQueueRejectsWhenFull(t *testing.T) {
	srv := admissionServer(t, Options{Sessions: 1, WriteQueue: 1, AdmitWait: 25 * time.Millisecond})
	ts := httptest.NewServer(Handler(srv))
	defer ts.Close()
	maint := srv.Maintainer()

	release := make(chan struct{})
	orig := insertBatch
	insertBatch = func(g *tag.Graph, table string, rows []relation.Tuple) ([]bsp.VertexID, error) {
		<-release
		return orig(g, table, rows)
	}
	defer func() { insertBatch = orig }()

	var (
		firstErr error
		wg       sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, firstErr = maint.InsertBatch("items",
			[]relation.Tuple{{relation.Int(7000), relation.Str("g0"), relation.Int(1)}})
	}()
	// Wait for the first write to occupy the queue slot (it parks inside
	// its publish cycle holding it).
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().WriteQueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first write never occupied the queue slot")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := maint.InsertBatch("items",
		[]relation.Tuple{{relation.Int(7001), relation.Str("g1"), relation.Int(2)}}); !errors.Is(err, ErrOverloaded) {
		t.Errorf("write on full queue returned %v, want ErrOverloaded", err)
	}

	body := strings.NewReader(`{"table":"items","insert":[[7002,"g2",3]]}`)
	resp, err := ts.Client().Post(ts.URL+"/write", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("overloaded /write status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}

	close(release)
	wg.Wait()
	if firstErr != nil {
		t.Fatalf("parked write failed: %v", firstErr)
	}
	if st := srv.Stats(); st.WriteRejected != 2 {
		t.Errorf("WriteRejected = %d, want 2", st.WriteRejected)
	}

	res, err := srv.Query("SELECT COUNT(*) FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows.Tuples[0][0].AsInt(); n != 61 {
		t.Errorf("COUNT(*) = %d, want 61 (only the parked write landed)", n)
	}
}

// TestMetricsEndpoint: /metrics serves Prometheus text (content type
// pinned to the 0.0.4 exposition format) carrying the serving
// counters, the admission/queue gauges, and the per-protocol latency
// histograms with quantile gauges.
func TestMetricsEndpoint(t *testing.T) {
	srv := admissionServer(t, Options{Sessions: 1, AdmitWait: 10 * time.Millisecond})
	ts := httptest.NewServer(Handler(srv))
	defer ts.Close()

	for i := 0; i < 2; i++ {
		if _, err := srv.Query("SELECT COUNT(*) FROM items"); err != nil {
			t.Fatal(err)
		}
	}
	// One admission refusal so the rejected counter is visibly nonzero.
	pool := srv.Generation().Pool()
	sess := pool.Acquire()
	if _, err := srv.Query("SELECT COUNT(*) FROM items"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expected overload, got %v", err)
	}
	pool.Release(sess)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text exposition format", ct)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE tagserve_queries_total counter",
		"tagserve_queries_total 2",
		"tagserve_admission_rejected_total 1",
		"tagserve_write_rejected_total 0",
		"tagserve_queries_canceled_total 0",
		"# TYPE tagserve_sessions_in_flight gauge",
		"tagserve_sessions_in_flight 0",
		"tagserve_write_queue_depth 0",
		"# TYPE tagserve_query_duration_seconds histogram",
		`tagserve_query_duration_seconds_bucket{protocol="http",le="+Inf"} 2`,
		`tagserve_query_duration_seconds_bucket{protocol="binary",le="+Inf"} 0`,
		`tagserve_query_duration_seconds_count{protocol="http"} 2`,
		`tagserve_query_latency_seconds{protocol="http",quantile="0.5"}`,
		`tagserve_query_latency_seconds{protocol="http",quantile="0.99"}`,
		`tagserve_query_latency_seconds{protocol="binary",quantile="0.999"}`,
		"tagserve_epoch 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Two sub-second queries must have landed in a finite bucket, not
	// only +Inf: at least one le line short of +Inf carries count 2.
	if !strings.Contains(body, `le="10"} 2`) {
		t.Errorf("/metrics histogram did not accumulate http observations into finite buckets:\n%s", body)
	}

	// HEAD works for probes.
	req, _ := http.NewRequest("HEAD", ts.URL+"/metrics", nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("HEAD /metrics status = %d, want 200", resp.StatusCode)
	}
}

// TestConcurrentCancellationUnderRace hammers real engine executions
// with contexts that expire at arbitrary points (including before
// admission and mid-superstep) from several goroutines at once. Run
// under -race in CI, it is the evidence that a canceled query releases
// its pooled session without corrupting the engine state the next
// query inherits: after the storm, InFlight is exactly 0 and a fresh
// query on every pooled session computes the right answer.
func TestConcurrentCancellationUnderRace(t *testing.T) {
	srv := admissionServer(t, Options{
		Sessions:  2,
		AdmitWait: 50 * time.Millisecond,
		Engine:    bsp.Options{Workers: 2}, // exercise the persistent worker pool under cancellation
	})
	queries := []string{
		"SELECT grp, SUM(val) FROM items GROUP BY grp",
		"SELECT gname, COUNT(*) FROM items, groups WHERE grp = gname GROUP BY gname",
	}

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				var ctx context.Context
				var cancel context.CancelFunc
				switch i % 3 {
				case 0: // already expired at submit
					ctx, cancel = context.WithCancel(context.Background())
					cancel()
				case 1: // expires mid-run (or mid-admission)
					ctx, cancel = context.WithTimeout(context.Background(), time.Duration(i%5)*100*time.Microsecond)
				default: // runs to completion
					ctx, cancel = context.WithCancel(context.Background())
				}
				res, err := srv.QueryContext(ctx, queries[(c+i)%len(queries)])
				cancel()
				// Whatever the interleaving, the outcome must be coherent:
				// either rows or a typed abort/overload error.
				if err == nil && res == nil {
					t.Error("nil result with nil error")
				}
				if err != nil && !errors.Is(err, context.Canceled) &&
					!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrOverloaded) {
					t.Errorf("unexpected error class: %v", err)
				}
			}
		}(c)
	}
	wg.Wait()

	st := srv.Stats()
	if st.InFlight != 0 {
		t.Fatalf("InFlight after cancellation storm = %d, want 0", st.InFlight)
	}
	if st.Errors != 0 {
		t.Errorf("Errors after cancellation storm = %d, want 0 (aborts must count Canceled)", st.Errors)
	}

	// Drive one query through every pooled session: a canceled run that
	// left torn engine state behind would poison one of them.
	want, err := srv.Query("SELECT grp, SUM(val) FROM items GROUP BY grp")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*srv.Generation().Pool().Size(); i++ {
		res, err := srv.Query("SELECT grp, SUM(val) FROM items GROUP BY grp")
		if err != nil {
			t.Fatalf("post-storm query %d: %v", i, err)
		}
		if res.Rows.Len() != want.Rows.Len() {
			t.Fatalf("post-storm query %d returned %d rows, want %d", i, res.Rows.Len(), want.Rows.Len())
		}
	}
}
