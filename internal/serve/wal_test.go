package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bsp"
	"repro/internal/relation"
	"repro/internal/tag"
	"repro/internal/tpch"
	"repro/internal/wal"
)

// synthFromTemplates derives an insert batch from template rows, giving
// each row a fresh integer key in column 0 so attribute fan-in stays
// realistic.
func synthFromTemplates(templates []relation.Tuple, n int, nextKey *int64) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		row := templates[i%len(templates)].Clone()
		if len(row) > 0 && row[0].Kind == relation.KindInt {
			row[0] = relation.Int(*nextKey)
			*nextKey++
		}
		out[i] = row
	}
	return out
}

// TestWALReplayMatchesLive is the end-to-end durability test: a server
// runs a mixed insert/delete/query workload with the WAL on; a crash is
// simulated by replaying the log — without closing the live writer, as
// a kill leaves it — into a second server built from the same base
// catalog. The recovered server must reach the exact pre-crash epoch,
// answer every TPC-H query identically to the uninterrupted server,
// match its /stats row counts, and keep accepting writes.
func TestWALReplayMatchesLive(t *testing.T) {
	dir := t.TempDir()
	build := func() *tag.Graph {
		g, err := tag.Build(tpch.Generate(0.05, 2021), nil)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	live, err := Open(build(), Options{Sessions: 2, WALDir: dir, WALSync: wal.SyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	maint := live.Maintainer()

	// Snapshot insert templates before the workload mutates the catalog.
	rel := live.Graph().Catalog.Get("orders")
	if rel == nil || rel.Len() < 10 {
		t.Fatal("no orders rows to derive inserts from")
	}
	templates := make([]relation.Tuple, 10)
	for i := range templates {
		templates[i] = rel.Tuples[i].Clone()
	}

	// Mixed workload: 6 insert batches with queries interleaved, then
	// 2 delete batches over rows the inserts created.
	nextKey := int64(1) << 40
	var insertedIDs []bsp.VertexID
	for i := 0; i < 6; i++ {
		res, err := maint.InsertBatch("orders", synthFromTemplates(templates, 20, &nextKey))
		if err != nil {
			t.Fatal(err)
		}
		insertedIDs = append(insertedIDs, res.Inserted...)
		if _, err := live.Query("SELECT COUNT(*) FROM orders"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := maint.DeleteBatch(insertedIDs[i*30 : (i+1)*30]); err != nil {
			t.Fatal(err)
		}
	}
	liveStats := live.Stats()
	if liveStats.Epoch != 8 || liveStats.WALRecords != 8 {
		t.Fatalf("live epoch/wal records = %d/%d, want 8/8", liveStats.Epoch, liveStats.WALRecords)
	}

	// "Crash" the writer — Close releases the dir's flock the way a real
	// kill would (the kernel drops it with the process); the unclean-
	// shutdown artifact itself, a torn tail, is covered by
	// TestWALTornTailRecovery. The live server stays up for reads.
	if err := live.WAL().Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: fresh base graph, same log directory.
	recovered, err := Open(build(), Options{Sessions: 2, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	recStats := recovered.Stats()
	if recStats.WALReplayed != 8 || recStats.Epoch != liveStats.Epoch {
		t.Fatalf("recovered replayed/epoch = %d/%d, want 8/%d",
			recStats.WALReplayed, recStats.Epoch, liveStats.Epoch)
	}
	if recStats.RowsInserted != liveStats.RowsInserted || recStats.RowsDeleted != liveStats.RowsDeleted {
		t.Errorf("recovered rows inserted/deleted = %d/%d, live %d/%d",
			recStats.RowsInserted, recStats.RowsDeleted, liveStats.RowsInserted, liveStats.RowsDeleted)
	}
	if recStats.Swaps != liveStats.Swaps || recStats.WriteOps != liveStats.WriteOps {
		t.Errorf("recovered swaps/writeops = %d/%d, live %d/%d",
			recStats.Swaps, recStats.WriteOps, liveStats.Swaps, liveStats.WriteOps)
	}

	// Every TPC-H query answers identically on both servers.
	for _, q := range tpch.Queries() {
		lr, err := live.Query(q.SQL)
		if err != nil {
			t.Fatalf("live %s: %v", q.ID, err)
		}
		rr, err := recovered.Query(q.SQL)
		if err != nil {
			t.Fatalf("recovered %s: %v", q.ID, err)
		}
		if !relation.EqualMultisetFuzzy(lr.Rows, rr.Rows) {
			t.Errorf("%s: recovered answer differs from live", q.ID)
		}
	}

	// The recovered server keeps going: its writer appends after the
	// replayed prefix and the epoch chain continues.
	res, err := recovered.Maintainer().InsertBatch("orders", synthFromTemplates(templates, 5, &nextKey))
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != liveStats.Epoch+1 {
		t.Errorf("post-recovery write landed at epoch %d, want %d", res.Epoch, liveStats.Epoch+1)
	}
	if st := recovered.Stats(); st.WALRecords != 1 {
		t.Errorf("post-recovery wal records = %d, want 1 (replay must not re-append)", st.WALRecords)
	}
}

// TestWALRefusesForeignBase: a WAL dir is bound to the base catalog it
// was recorded against; booting a different base (other workload,
// scale, or seed) against it must be refused, not silently replayed —
// logged delete ids would resolve to unrelated rows.
func TestWALRefusesForeignBase(t *testing.T) {
	dir := t.TempDir()
	g, err := tag.Build(itemsCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Open(g, Options{Sessions: 1, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Maintainer().InsertBatch("items",
		[]relation.Tuple{{relation.Int(9000), relation.Str("g0"), relation.Int(1)}}); err != nil {
		t.Fatal(err)
	}

	// While the first writer is live, any second Open — same base or
	// not — is refused by the dir's flock (two writers would corrupt
	// the log).
	g2, err := tag.Build(itemsCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(g2, Options{Sessions: 1, WALDir: dir}); err == nil ||
		!strings.Contains(err.Error(), "live writer") {
		t.Fatalf("concurrent writer accepted (err=%v), want a lock refusal", err)
	}
	if err := srv.WAL().Close(); err != nil {
		t.Fatal(err)
	}

	other, err := tag.Build(tpch.Generate(0.01, 2021), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(other, Options{Sessions: 1, WALDir: dir}); err == nil ||
		!strings.Contains(err.Error(), "different base") {
		t.Fatalf("foreign base accepted (err=%v), want a fingerprint refusal", err)
	}

	// The rightful base still recovers.
	same, err := tag.Build(itemsCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Open(same, Options{Sessions: 1, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if st := rec.Stats(); st.WALReplayed != 1 || st.Epoch != 1 {
		t.Errorf("rightful base replayed %d epochs to %d, want 1/1", st.WALReplayed, st.Epoch)
	}
}

// TestWALTornTailRecovery: a record torn by a mid-append crash is
// dropped, and the server recovers to the longest consistent prefix.
func TestWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	build := func() *tag.Graph {
		g, err := tag.Build(itemsCatalog(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	srv, err := Open(build(), Options{Sessions: 1, WALDir: dir, WALSync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	maint := srv.Maintainer()
	for i := 0; i < 3; i++ {
		rows := []relation.Tuple{{relation.Int(int64(7000 + i)), relation.Str("g0"), relation.Int(1)}}
		if _, err := maint.InsertBatch("items", rows); err != nil {
			t.Fatal(err)
		}
	}

	// Tear the tail record, as a crash mid-append would (closing first
	// releases the flock, as the kernel does when a process dies).
	if err := srv.WAL().Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "wal.log")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	recovered, err := Open(build(), Options{Sessions: 1, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st := recovered.Stats()
	if st.WALReplayed != 2 || st.Epoch != 2 || st.RowsInserted != 2 {
		t.Fatalf("recovered replayed/epoch/rows = %d/%d/%d, want 2/2/2",
			st.WALReplayed, st.Epoch, st.RowsInserted)
	}
	res, err := recovered.Query("SELECT COUNT(*) FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows.Tuples[0][0].AsInt(); n != 62 {
		t.Errorf("COUNT(*) = %d, want 62 (60 base + the 2 surviving batches)", n)
	}
	// The epoch the torn record claimed is reusable: the next write
	// lands there and re-logs cleanly over the truncated tail.
	wres, err := recovered.Maintainer().InsertBatch("items",
		[]relation.Tuple{{relation.Int(8000), relation.Str("g1"), relation.Int(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if wres.Epoch != 3 {
		t.Errorf("post-recovery epoch = %d, want 3", wres.Epoch)
	}
	if err := recovered.WAL().Close(); err != nil {
		t.Fatal(err)
	}
	check, err := Open(build(), Options{Sessions: 1, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if st := check.Stats(); st.WALReplayed != 3 || st.Epoch != 3 || st.RowsInserted != 3 {
		t.Errorf("re-replay = %d records to epoch %d with %d rows, want 3/3/3",
			st.WALReplayed, st.Epoch, st.RowsInserted)
	}
}
