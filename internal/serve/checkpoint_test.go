package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bsp"
	"repro/internal/checkpoint"
	"repro/internal/relation"
	"repro/internal/tag"
	"repro/internal/tpch"
	"repro/internal/wal"
)

// copyBootDir clones the durable artifacts of a WAL dir into a fresh
// temp dir — the log and the base fingerprint, plus (optionally) the
// checkpoint files — so one crash image can boot twice under different
// conditions without the boots interfering.
func copyBootDir(t *testing.T, src string, withCheckpoints bool) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if name == "wal.lock" {
			continue
		}
		if !withCheckpoints && strings.HasSuffix(name, ".ckpt") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestCheckpointBootMatchesReplay is the end-to-end acceptance test for
// snapshot-load boot: a server checkpoints mid-workload (without
// truncating, so the full log survives for the control boot), keeps
// writing, and crashes. The same crash image then boots twice — once
// with the checkpoint deleted (full replay) and once with it (snapshot
// + suffix replay). Both must answer all TPC-H queries identically,
// and the snapshot boot must have replayed strictly fewer records.
func TestCheckpointBootMatchesReplay(t *testing.T) {
	dir := t.TempDir()
	build := func() *tag.Graph {
		g, err := tag.Build(tpch.Generate(0.05, 2021), nil)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	live, err := Open(build(), Options{Sessions: 2, WALDir: dir, WALSync: wal.SyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	maint := live.Maintainer()
	rel := live.Graph().Catalog.Get("orders")
	templates := make([]relation.Tuple, 10)
	for i := range templates {
		templates[i] = rel.Tuples[i].Clone()
	}

	nextKey := int64(1) << 40
	var insertedIDs []bsp.VertexID
	for i := 0; i < 4; i++ {
		res, err := maint.InsertBatch("orders", synthFromTemplates(templates, 20, &nextKey))
		if err != nil {
			t.Fatal(err)
		}
		insertedIDs = append(insertedIDs, res.Inserted...)
	}
	if _, err := maint.DeleteBatch(insertedIDs[:25]); err != nil {
		t.Fatal(err)
	}

	// Checkpoint at epoch 5, keeping the full log so the control boot
	// can replay from scratch.
	ckptEpoch, err := maint.Checkpoint(false)
	if err != nil {
		t.Fatal(err)
	}
	if ckptEpoch != 5 {
		t.Fatalf("checkpoint epoch = %d, want 5", ckptEpoch)
	}

	// Post-checkpoint suffix: more inserts and a delete that spans rows
	// created both before and after the checkpoint.
	for i := 0; i < 2; i++ {
		res, err := maint.InsertBatch("orders", synthFromTemplates(templates, 20, &nextKey))
		if err != nil {
			t.Fatal(err)
		}
		insertedIDs = append(insertedIDs, res.Inserted...)
	}
	if _, err := maint.DeleteBatch(insertedIDs[70:90]); err != nil {
		t.Fatal(err)
	}
	liveStats := live.Stats()
	if liveStats.Epoch != 8 {
		t.Fatalf("live epoch = %d, want 8", liveStats.Epoch)
	}

	// Crash: the kernel would drop the flock with the process.
	if err := live.WAL().Close(); err != nil {
		t.Fatal(err)
	}

	// Boot A (control): same image minus the checkpoint — full replay.
	dirA := copyBootDir(t, dir, false)
	bootA, err := Open(build(), Options{Sessions: 2, WALDir: dirA})
	if err != nil {
		t.Fatal(err)
	}
	stA := bootA.Stats()
	if stA.WALReplayed != 8 || stA.WALSkipped != 0 || stA.Epoch != 8 {
		t.Fatalf("full-replay boot replayed/skipped/epoch = %d/%d/%d, want 8/0/8",
			stA.WALReplayed, stA.WALSkipped, stA.Epoch)
	}

	// Boot B: checkpoint present — snapshot-load plus suffix replay only.
	bootB, err := Open(build(), Options{Sessions: 2, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	stB := bootB.Stats()
	if stB.WALReplayed != 3 || stB.WALSkipped != 5 || stB.Epoch != 8 {
		t.Fatalf("snapshot boot replayed/skipped/epoch = %d/%d/%d, want 3/5/8",
			stB.WALReplayed, stB.WALSkipped, stB.Epoch)
	}
	if stB.WALReplayed >= stA.WALReplayed {
		t.Fatalf("snapshot boot replayed %d records, full replay %d — checkpoint saved nothing",
			stB.WALReplayed, stA.WALReplayed)
	}
	if stB.CheckpointEpoch != ckptEpoch {
		t.Errorf("boot CheckpointEpoch = %d, want %d", stB.CheckpointEpoch, ckptEpoch)
	}

	// The two boots are indistinguishable to every TPC-H query.
	for _, q := range tpch.Queries() {
		ra, err := bootA.Query(q.SQL)
		if err != nil {
			t.Fatalf("full-replay %s: %v", q.ID, err)
		}
		rb, err := bootB.Query(q.SQL)
		if err != nil {
			t.Fatalf("snapshot-boot %s: %v", q.ID, err)
		}
		if !relation.EqualMultisetFuzzy(ra.Rows, rb.Rows) {
			t.Errorf("%s: snapshot boot answers differently from full replay", q.ID)
		}
	}

	// And writes keep landing on the same epoch chain.
	resA, err := bootA.Maintainer().InsertBatch("orders", synthFromTemplates(templates, 5, &nextKey))
	if err != nil {
		t.Fatal(err)
	}
	nextKey -= 5 // same keys on both sides
	resB, err := bootB.Maintainer().InsertBatch("orders", synthFromTemplates(templates, 5, &nextKey))
	if err != nil {
		t.Fatal(err)
	}
	if resA.Epoch != 9 || resB.Epoch != 9 {
		t.Errorf("post-boot epochs = %d/%d, want 9/9", resA.Epoch, resB.Epoch)
	}
}

// TestCheckpointTruncateCompacts: the production compaction path —
// checkpoint with truncate drops the covered log prefix, and the next
// boot loads the snapshot and replays only what remains.
func TestCheckpointTruncateCompacts(t *testing.T) {
	dir := t.TempDir()
	build := func() *tag.Graph {
		g, err := tag.Build(itemsCatalog(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	srv, err := Open(build(), Options{Sessions: 1, WALDir: dir, WALSync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	maint := srv.Maintainer()
	for i := 0; i < 4; i++ {
		rows := []relation.Tuple{{relation.Int(int64(7000 + i)), relation.Str("g0"), relation.Int(1)}}
		if _, err := maint.InsertBatch("items", rows); err != nil {
			t.Fatal(err)
		}
	}
	logPath := filepath.Join(dir, "wal.log")
	fi, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	before := fi.Size()

	if epoch, err := maint.Checkpoint(true); err != nil || epoch != 4 {
		t.Fatalf("Checkpoint = %d, %v, want 4, nil", epoch, err)
	}
	st := srv.Stats()
	if st.WALTruncations != 1 || st.Checkpoints != 1 || st.CheckpointEpoch != 4 {
		t.Fatalf("post-truncate truncations/ckpts/epoch = %d/%d/%d, want 1/1/4",
			st.WALTruncations, st.Checkpoints, st.CheckpointEpoch)
	}
	if fi, err = os.Stat(logPath); err != nil || fi.Size() != 0 {
		t.Fatalf("post-truncate log size = %d (err %v), want 0 (was %d)", fi.Size(), err, before)
	}

	// Suffix after compaction, then crash.
	if _, err := maint.InsertBatch("items",
		[]relation.Tuple{{relation.Int(8000), relation.Str("g1"), relation.Int(2)}}); err != nil {
		t.Fatal(err)
	}
	if err := srv.WAL().Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Open(build(), Options{Sessions: 1, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rst := rec.Stats()
	if rst.WALReplayed != 1 || rst.WALSkipped != 0 || rst.Epoch != 5 {
		t.Fatalf("compacted boot replayed/skipped/epoch = %d/%d/%d, want 1/0/5",
			rst.WALReplayed, rst.WALSkipped, rst.Epoch)
	}
	res, err := rec.Query("SELECT COUNT(*) FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows.Tuples[0][0].AsInt(); n != 65 {
		t.Errorf("COUNT(*) = %d, want 65 (60 base + 5 inserts)", n)
	}
}

// TestCheckpointCrashAndCorruptionFallbacks covers the failure matrix:
// a kill mid-checkpoint-write leaves only a stray temp file that boot
// ignores; a bit-flipped or torn checkpoint falls back to full replay
// (the log was kept); a checkpoint stamped for a foreign base is
// refused the same way.
func TestCheckpointCrashAndCorruptionFallbacks(t *testing.T) {
	dir := t.TempDir()
	build := func() *tag.Graph {
		g, err := tag.Build(itemsCatalog(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	srv, err := Open(build(), Options{Sessions: 1, WALDir: dir, WALSync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	maint := srv.Maintainer()
	for i := 0; i < 3; i++ {
		rows := []relation.Tuple{{relation.Int(int64(7000 + i)), relation.Str("g0"), relation.Int(1)}}
		if _, err := maint.InsertBatch("items", rows); err != nil {
			t.Fatal(err)
		}
	}
	// Keep the log: fallbacks below require full replay to stay possible.
	if _, err := maint.Checkpoint(false); err != nil {
		t.Fatal(err)
	}
	if err := srv.WAL().Close(); err != nil {
		t.Fatal(err)
	}

	ckptPath := filepath.Join(dir, checkpoint.FileName(3))
	good, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}

	boot := func(t *testing.T, dir string) Stats {
		t.Helper()
		s, err := Open(build(), Options{Sessions: 1, WALDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		if st.Epoch != 3 {
			t.Fatalf("boot epoch = %d, want 3", st.Epoch)
		}
		res, err := s.Query("SELECT COUNT(*) FROM items")
		if err != nil {
			t.Fatal(err)
		}
		if n := res.Rows.Tuples[0][0].AsInt(); n != 63 {
			t.Fatalf("COUNT(*) = %d, want 63", n)
		}
		if err := s.WAL().Close(); err != nil {
			t.Fatal(err)
		}
		return st
	}

	t.Run("stray temp ignored", func(t *testing.T) {
		d := copyBootDir(t, dir, true)
		if err := os.WriteFile(filepath.Join(d, ".ckpt-tmp-42"), good[:len(good)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		st := boot(t, d)
		if st.WALSkipped != 3 || st.WALReplayed != 0 || st.CheckpointErrors != 0 {
			t.Errorf("skipped/replayed/errors = %d/%d/%d, want 3/0/0 (snapshot boot, temp invisible)",
				st.WALSkipped, st.WALReplayed, st.CheckpointErrors)
		}
		if _, err := os.Stat(filepath.Join(d, ".ckpt-tmp-42")); err != nil {
			t.Errorf("boot should leave the stray temp for the next checkpoint's gc: %v", err)
		}
	})

	t.Run("bit flip falls back to full replay", func(t *testing.T) {
		d := copyBootDir(t, dir, true)
		bad := append([]byte(nil), good...)
		bad[len(bad)/2] ^= 0xff
		if err := os.WriteFile(filepath.Join(d, checkpoint.FileName(3)), bad, 0o644); err != nil {
			t.Fatal(err)
		}
		st := boot(t, d)
		if st.WALReplayed != 3 || st.WALSkipped != 0 || st.CheckpointErrors != 1 {
			t.Errorf("replayed/skipped/errors = %d/%d/%d, want 3/0/1 (full replay)",
				st.WALReplayed, st.WALSkipped, st.CheckpointErrors)
		}
	})

	t.Run("torn checkpoint falls back to full replay", func(t *testing.T) {
		d := copyBootDir(t, dir, true)
		if err := os.WriteFile(filepath.Join(d, checkpoint.FileName(3)), good[:len(good)/3], 0o644); err != nil {
			t.Fatal(err)
		}
		st := boot(t, d)
		if st.WALReplayed != 3 || st.CheckpointErrors != 1 {
			t.Errorf("replayed/errors = %d/%d, want 3/1", st.WALReplayed, st.CheckpointErrors)
		}
	})

	t.Run("foreign-base checkpoint refused", func(t *testing.T) {
		d := copyBootDir(t, dir, false)
		// A checkpoint whose image verifies but whose fingerprint names a
		// different base: structurally valid, semantically poison.
		g := build()
		if _, err := checkpoint.Write(d, g, 3, "not-this-base"); err != nil {
			t.Fatal(err)
		}
		st := boot(t, d)
		if st.WALReplayed != 3 || st.WALSkipped != 0 || st.CheckpointErrors != 1 {
			t.Errorf("replayed/skipped/errors = %d/%d/%d, want 3/0/1",
				st.WALReplayed, st.WALSkipped, st.CheckpointErrors)
		}
	})
}

// TestPeriodicCheckpoint: with CheckpointEvery set, the Maintainer
// checkpoints in the background every N epochs and truncates the
// covered prefix; a crash then boots from the snapshot.
func TestPeriodicCheckpoint(t *testing.T) {
	dir := t.TempDir()
	build := func() *tag.Graph {
		g, err := tag.Build(itemsCatalog(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	srv, err := Open(build(), Options{Sessions: 1, WALDir: dir, WALSync: wal.SyncAlways, CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	maint := srv.Maintainer()
	for i := 0; i < 4; i++ {
		rows := []relation.Tuple{{relation.Int(int64(7000 + i)), relation.Str("g0"), relation.Int(1)}}
		if _, err := maint.InsertBatch("items", rows); err != nil {
			t.Fatal(err)
		}
	}

	// The trigger fired at epoch 3; the snapshot lands asynchronously.
	deadline := time.Now().Add(10 * time.Second)
	var st Stats
	for {
		st = srv.Stats()
		if st.Checkpoints >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no periodic checkpoint after 4 writes with CheckpointEvery=3 (stats %+v)", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.CheckpointEpoch < 3 || st.CheckpointErrors != 0 || st.WALTruncations < 1 {
		t.Fatalf("checkpoint epoch/errors/truncations = %d/%d/%d, want >=3/0/>=1",
			st.CheckpointEpoch, st.CheckpointErrors, st.WALTruncations)
	}

	if err := srv.WAL().Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(build(), Options{Sessions: 1, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rst := rec.Stats()
	if rst.Epoch != 4 || rst.WALReplayed > 4-int64(rst.CheckpointEpoch) {
		t.Fatalf("rebooted epoch/replayed = %d/%d with checkpoint at %d",
			rst.Epoch, rst.WALReplayed, rst.CheckpointEpoch)
	}
	res, err := rec.Query("SELECT COUNT(*) FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows.Tuples[0][0].AsInt(); n != 64 {
		t.Errorf("COUNT(*) = %d, want 64", n)
	}
}
