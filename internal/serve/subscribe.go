package serve

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/sql"
)

// This file is the pinned-query (subscription) layer: a prepared query
// can be pinned, after which the server maintains its answer across
// generation swaps instead of clients re-running it. For eligible
// queries the maintenance is incremental — after publishing epoch k+1
// the write path folds the batch's delta into the cached epoch-k state
// via core.FoldDelta, re-seeding BSP only from the batch-touched
// vertices — so the per-write cost of a hot pinned query is O(delta),
// not O(graph). Queries the incremental layer cannot maintain (outer
// joins, cyclic plans, subqueries, representative-dependent
// projections) are still pinned, but refreshed by a full cold re-run
// per epoch; both paths are visible in Stats as IncrementalHits vs
// IncrementalFallbacks.
//
// Every refresh happens under the writer lock, immediately after the
// publish that made the new epoch visible, so a subscription's answer
// chain has no holes: epoch k's answer is always derived from epoch
// k-1's state plus exactly that batch (or a cold run of epoch k).

// subscription is one pinned query. The registry key is the statement's
// normalized fingerprint, so textual variants of the same query share
// one subscription; pins counts how many subscribers hold it.
type subscription struct {
	fp       string
	sql      string
	an       *sql.Analysis
	eligible bool
	reason   string // why incremental maintenance is off (eligible == false)

	mu     sync.Mutex
	pins   int
	st     *core.QueryState   // foldable state; nil when ineligible
	epoch  uint64             // epoch answer is valid for
	answer *relation.Relation // canonically sorted rows at epoch
	notify chan struct{}      // closed and replaced on every refresh
}

// SubscribeResult reports a pin: the subscription's fingerprint (the
// handle for polling and unpinning), whether it is maintained
// incrementally, and the current answer.
type SubscribeResult struct {
	FP       string
	Eligible bool
	Reason   string // empty when Eligible
	Epoch    uint64
	Pins     int
	Answer   *relation.Relation
}

// Subscribe pins a query: the server computes its answer now and keeps
// it current across every later write. Pinning an already-pinned
// statement (same fingerprint) adds a pin to the existing subscription
// and returns its current answer without re-running anything.
//
// Subscribe serializes with the write path (it holds the writer lock
// while building the initial state), so the state it installs is
// exactly the served epoch's and the next write folds from it — pins
// are rare and writes are cheap relative to a cold query, so this is
// the simple end of the tradeoff.
func (s *Server) Subscribe(query string) (*SubscribeResult, error) {
	an, fp, _, err := s.prepareFP(query)
	if err != nil {
		return nil, err
	}

	// Fast path: the statement is already pinned.
	s.subMu.Lock()
	if sub, ok := s.subs[fp]; ok {
		s.subMu.Unlock()
		sub.mu.Lock()
		sub.pins++
		res := &SubscribeResult{FP: fp, Eligible: sub.eligible, Reason: sub.reason,
			Epoch: sub.epoch, Pins: sub.pins, Answer: sub.answer}
		sub.mu.Unlock()
		return res, nil
	}
	s.subMu.Unlock()

	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	// Re-check under the writer lock: a racing Subscribe may have won.
	s.subMu.Lock()
	if sub, ok := s.subs[fp]; ok {
		s.subMu.Unlock()
		sub.mu.Lock()
		sub.pins++
		res := &SubscribeResult{FP: fp, Eligible: sub.eligible, Reason: sub.reason,
			Epoch: sub.epoch, Pins: sub.pins, Answer: sub.answer}
		sub.mu.Unlock()
		return res, nil
	}
	s.subMu.Unlock()

	gen := s.gen.Load() // stable: we hold writeMu
	sess := core.NewSession(gen.Graph, s.opts.Engine)
	sub := &subscription{fp: fp, sql: query, an: an, pins: 1, epoch: gen.Epoch,
		notify: make(chan struct{})}
	sub.eligible, sub.reason = sess.IncrementalEligible(an)
	if sub.eligible {
		st, err := sess.BuildState(an, gen.Epoch)
		if err != nil {
			return nil, err
		}
		sub.st, sub.answer = st, st.Answer
	} else {
		out, err := sess.Run(an)
		if err != nil {
			return nil, err
		}
		sub.answer = core.SortCanonical(out)
	}

	s.subMu.Lock()
	s.subs[fp] = sub
	s.subMu.Unlock()
	return &SubscribeResult{FP: fp, Eligible: sub.eligible, Reason: sub.reason,
		Epoch: sub.epoch, Pins: 1, Answer: sub.answer}, nil
}

// Unsubscribe drops one pin from a subscription; the subscription (and
// its maintained state) is removed when the last pin is dropped. It
// reports the remaining pin count, or ok == false for an unknown
// fingerprint.
func (s *Server) Unsubscribe(fp string) (remaining int, ok bool) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	sub, ok := s.subs[fp]
	if !ok {
		return 0, false
	}
	sub.mu.Lock()
	sub.pins--
	remaining = sub.pins
	sub.mu.Unlock()
	if remaining <= 0 {
		delete(s.subs, fp)
	}
	return remaining, true
}

// SubscriptionAnswer returns a pinned query's current answer and the
// epoch it is valid for, or ok == false for an unknown fingerprint.
func (s *Server) SubscriptionAnswer(fp string) (answer *relation.Relation, epoch uint64, ok bool) {
	s.subMu.Lock()
	sub, ok := s.subs[fp]
	s.subMu.Unlock()
	if !ok {
		return nil, 0, false
	}
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.answer, sub.epoch, true
}

// WaitAnswer long-polls a subscription: it returns as soon as the
// subscription's answer is for an epoch > after (immediately, if it
// already is), or when ctx expires — then with the current answer and
// epoch, which the caller distinguishes by comparing against after.
// ok == false means the fingerprint is not pinned.
func (s *Server) WaitAnswer(ctx context.Context, fp string, after uint64) (answer *relation.Relation, epoch uint64, ok bool) {
	for {
		s.subMu.Lock()
		sub, found := s.subs[fp]
		s.subMu.Unlock()
		if !found {
			return nil, 0, false
		}
		sub.mu.Lock()
		answer, epoch = sub.answer, sub.epoch
		ch := sub.notify
		sub.mu.Unlock()
		if epoch > after {
			return answer, epoch, true
		}
		select {
		case <-ch:
			// refreshed — reload and re-test
		case <-ctx.Done():
			return answer, epoch, true
		}
	}
}

// Pinned reports how many queries are currently pinned.
func (s *Server) Pinned() int {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	return len(s.subs)
}

// refreshSubscriptions advances every pinned query to the just-published
// generation. Called by applyBatch under writeMu, right after the swap:
// gen.Graph is the clone the batch was applied to, so its delta
// tracking (armed by tag.Clone) describes exactly the step from epoch-1
// to epoch and core.FoldDelta can fold it. Ineligible subscriptions are
// re-run cold.
//
// With opts.VerifyIncremental set, every folded answer is checked
// byte-identical to a cold re-run of the same epoch; a divergence
// counts Stats.IncrementalMismatches, replaces the answer with the cold
// run's, and rebuilds the foldable state from it — the guard never
// serves an unverified fold.
func (s *Server) refreshSubscriptions(gen *Generation) {
	s.subMu.Lock()
	subs := make([]*subscription, 0, len(s.subs))
	for _, sub := range s.subs {
		subs = append(subs, sub)
	}
	s.subMu.Unlock()
	if len(subs) == 0 {
		return
	}

	sess := core.NewSession(gen.Graph, s.opts.Engine)
	var hits, falls, mism int64
	for _, sub := range subs {
		answer, outcome, err := s.refreshOne(sess, sub, gen.Epoch)
		if err != nil {
			// The query failed on the new generation (it executed fine when
			// pinned, so this is exceptional). Keep serving the last good
			// answer at its old epoch; the next refresh will rebuild.
			falls++
			continue
		}
		if outcome == core.FoldHit {
			hits++
		} else {
			falls++
		}
		if s.opts.VerifyIncremental && sub.st != nil && outcome == core.FoldHit {
			cold, err := sess.Run(sub.an)
			if err == nil {
				coldSorted := core.SortCanonical(cold)
				if !bytes.Equal(core.CanonicalBytes(answer), core.CanonicalBytes(coldSorted)) {
					mism++
					answer = coldSorted
					if st, err := sess.BuildState(sub.an, gen.Epoch); err == nil {
						sub.st, answer = st, st.Answer
					} else {
						sub.st = nil // stop folding a state we cannot trust
					}
				}
			}
		}
		sub.mu.Lock()
		sub.answer, sub.epoch = answer, gen.Epoch
		close(sub.notify)
		sub.notify = make(chan struct{})
		sub.mu.Unlock()
	}

	s.statsMu.Lock()
	s.stats.IncrementalHits += hits
	s.stats.IncrementalFallbacks += falls
	s.stats.IncrementalMismatches += mism
	s.statsMu.Unlock()
}

// refreshOne advances one subscription to epoch on sess's generation.
func (s *Server) refreshOne(sess *core.Session, sub *subscription, epoch uint64) (*relation.Relation, core.FoldOutcome, error) {
	if sub.st != nil {
		outcome, err := sess.FoldDelta(sub.st, epoch)
		if err != nil {
			return nil, outcome, err
		}
		return sub.st.Answer, outcome, nil
	}
	out, err := sess.Run(sub.an)
	if err != nil {
		return nil, core.FoldFallback, err
	}
	return core.SortCanonical(out), core.FoldFallback, nil
}

// waitBounds clamps a client-requested long-poll wait.
const (
	defaultWait = 10 * time.Second
	maxWait     = 60 * time.Second
)

func clampWait(ms float64) (time.Duration, error) {
	if ms < 0 {
		return 0, fmt.Errorf("serve: negative wait_ms")
	}
	if ms == 0 {
		return defaultWait, nil
	}
	d := time.Duration(ms * float64(time.Millisecond))
	if d > maxWait {
		d = maxWait
	}
	return d, nil
}
