package serve

import (
	"fmt"
	"time"

	"repro/internal/bsp"
	"repro/internal/relation"
	"repro/internal/tag"
	"repro/internal/wal"
)

// Maintainer applies writes to a Server without ever blocking its
// readers, coalescing concurrent writers into shared generation
// publishes (group commit). Each publish cycle runs the generation
// protocol:
//
//  1. clone the current generation's graph copy-on-write (O(|V|) slice
//     headers and lookup maps; edge storage is shared until touched),
//  2. apply every queued write op to the private clone, in arrival
//     order — one Thaw/Freeze per op, re-indexing only the touched
//     vertices. Each op is pre-validated, so a bad op is skipped (its
//     caller gets the error) without poisoning the ops it shares the
//     clone with,
//  3. publish the clone as the next generation with an atomic pointer
//     swap; every coalesced op reports the same epoch.
//
// The first writer to reach the server's writer lock becomes the
// leader and drains the queue — including ops enqueued by writers
// still blocked behind it, which find their result ready when they get
// the lock — up to a per-cycle size budget (an over-budget burst
// publishes across several cycles so its WAL record stays well within
// the log's frame cap). A lone writer therefore still pays one clone
// per batch, but N writers colliding pay one clone per *drain*, which
// is what lifts ingest throughput toward the in-place baselines.
//
// In-flight queries keep their pinned generation until they finish;
// queries that start after the swap see the new one.
type Maintainer struct {
	s *Server
}

// WriteOp is one maintenance batch: inserts into one relation and/or
// deletes (by tuple-vertex id, which must name vertices that already
// exist when the op is submitted), applied atomically — a published
// generation carries either all of an op or none of it.
type WriteOp struct {
	Table  string // target relation for Insert; may be empty when only deleting
	Insert []relation.Tuple
	Delete []bsp.VertexID
}

// queuedWrite is one write op waiting in the server's coalescing
// queue. done closes once the op has been applied (or rejected) and
// res/err are final.
type queuedWrite struct {
	op   WriteOp
	done chan struct{}
	res  *WriteResult
	err  error
}

// WriteResult reports one published batch.
type WriteResult struct {
	Epoch     uint64         // epoch of the generation the batch landed in
	Inserted  []bsp.VertexID // tuple-vertex ids assigned to inserted rows
	Deleted   int
	Coalesced int           // ops that shared this publish (1 = no coalescing)
	Elapsed   time.Duration // clone + apply + publish time of the shared cycle
}

// Apply runs one batch through the coalescing clone/apply/publish
// protocol. On error the op is skipped and the served generation never
// sees it (validation precedes mutation, and a clone only becomes
// visible if at least one op applied). Safe for concurrent use;
// concurrent batches coalesce into one publish.
func (m *Maintainer) Apply(op WriteOp) (*WriteResult, error) {
	if len(op.Insert) == 0 && len(op.Delete) == 0 {
		return nil, fmt.Errorf("serve: empty write")
	}
	if len(op.Insert) > 0 && op.Table == "" {
		return nil, fmt.Errorf("serve: insert without a table")
	}

	s := m.s
	// Admission control: a write occupies a queue slot from here until
	// its result is final. When the queue stays full for the whole
	// bounded wait the write is refused with ErrOverloaded — the same
	// refusal discipline as the query path's session admission — so a
	// write burst backs pressure up to the clients instead of queueing
	// without limit. Boot-time replay bypasses Apply (applyBatch
	// directly) and is never admission-limited.
	if s.writeSlots != nil {
		select {
		case s.writeSlots <- struct{}{}:
		default:
			timer := time.NewTimer(s.opts.AdmitWait)
			select {
			case s.writeSlots <- struct{}{}:
				timer.Stop()
			case <-timer.C:
				s.statsMu.Lock()
				s.stats.WriteRejected++
				s.statsMu.Unlock()
				return nil, fmt.Errorf("serve: write queue full: %w", ErrOverloaded)
			}
		}
		defer func() { <-s.writeSlots }()
	}

	qw := &queuedWrite{op: op, done: make(chan struct{})}
	s.queueMu.Lock()
	s.writeQ = append(s.writeQ, qw)
	s.queueMu.Unlock()

	s.writeMu.Lock()
	defer s.writeMu.Unlock() // deferred so a panicking batch cannot wedge the writer path
	for {
		select {
		case <-qw.done:
			// A leader (possibly this writer, on a previous loop pass)
			// drained this op.
			return qw.res, qw.err
		default:
		}
		// This writer is the leader: drain a budget-bounded prefix of the
		// queue into one clone→apply→publish cycle, and loop until its own
		// op has gone through. The budget keeps one cycle's ops — which
		// become a single WAL record — well under the codec's frame cap,
		// so a burst of large writes publishes across a few cycles instead
		// of failing every op in one oversized record. While this op is
		// undone it is still queued (the queue only drains under writeMu,
		// which we hold), so every pass makes progress.
		s.queueMu.Lock()
		batch, rest := splitDrain(s.writeQ)
		s.writeQ = rest
		s.queueMu.Unlock()
		if len(batch) == 0 { // unreachable while qw is queued; fail closed
			return nil, fmt.Errorf("serve: write dropped from the queue")
		}
		s.applyBatch(batch)
	}
}

// drainBudget bounds the estimated encoded size of one publish cycle's
// ops (and therefore of its WAL record). Estimates use
// relation.Value.Size, which dominates the codec's per-value encoding,
// so the bound holds on disk too — 64MB sits far under the wal
// package's 256MB frame cap.
const drainBudget = 64 << 20

// splitDrain cuts the queue at the drain budget, always taking at
// least one op (a single op bigger than the budget runs alone).
func splitDrain(q []*queuedWrite) (batch, rest []*queuedWrite) {
	size, n := 0, 0
	for _, qw := range q {
		sz := opSizeEstimate(qw.op)
		if n > 0 && size+sz > drainBudget {
			break
		}
		size += sz
		n++
	}
	return q[:n:n], q[n:]
}

func opSizeEstimate(op WriteOp) int {
	sz := len(op.Table) + 16 + 5*len(op.Delete)
	for _, row := range op.Insert {
		sz += 4
		for _, v := range row {
			sz += v.Size()
		}
	}
	return sz
}

// applyBatch runs one clone→apply→publish cycle over a drained queue.
// The caller holds writeMu. If every op fails validation, nothing is
// published and the served generation is unchanged. A panic while
// applying (a latent bug in a batch operation) is converted into an
// error on every unpublished op — the clone is discarded unpublished,
// waiters are released, and the writer path stays usable.
func (s *Server) applyBatch(batch []*queuedWrite) {
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("serve: write batch panicked: %v", r)
			for _, qw := range batch {
				// Epoch 0 is never a published write (epochs start at 1), so
				// any op without one did not land.
				if qw.err == nil && (qw.res == nil || qw.res.Epoch == 0) {
					qw.res, qw.err = nil, err
				}
			}
		}
		for _, qw := range batch {
			close(qw.done)
		}
	}()
	start := time.Now()
	next := s.gen.Load().Graph.Clone()
	applied := make([]*queuedWrite, 0, len(batch))
	inserted, deleted := 0, 0
	for _, qw := range batch {
		op := qw.op
		// Validate before mutating, then apply the inserts before the
		// deletes. InsertBatch is the only call that can fail after its
		// validation passed (it fails closed), and it re-validates before
		// touching the graph — so a failed op always leaves the shared
		// clone exactly as it found it, and the rest of the drain
		// publishes untorn. (The previous delete-first order could
		// publish a failed op's deletes.) Within one op the order is
		// immaterial: deletes name vertices that predate the op, never
		// the ones its inserts create. The up-front ValidateDelete runs
		// only for mixed ops, where atomicity needs it settled before the
		// insert applies; a pure-delete op leans on DeleteBatch's own
		// all-or-nothing validation instead of being scanned twice.
		mixed := len(op.Insert) > 0 && len(op.Delete) > 0
		if len(op.Insert) > 0 {
			if qw.err = next.ValidateInsert(op.Table, op.Insert); qw.err != nil {
				continue
			}
		}
		if mixed {
			if qw.err = next.ValidateDelete(op.Delete); qw.err != nil {
				continue
			}
		}
		res := &WriteResult{Deleted: len(op.Delete)}
		if len(op.Insert) > 0 {
			ids, err := insertBatch(next, op.Table, op.Insert)
			if err != nil { // unreachable after ValidateInsert; fail closed
				qw.err = err
				continue
			}
			res.Inserted = ids
		}
		if len(op.Delete) > 0 {
			if err := next.DeleteBatch(op.Delete); err != nil {
				if !mixed {
					// Pure delete: DeleteBatch validated before mutating, so
					// the clone is untouched — skip the op like any other
					// validation failure.
					qw.err = err
					continue
				}
				// Unreachable: a mixed op passed ValidateDelete up front, and
				// inserts cannot invalidate a delete. If it ever fires, the
				// clone already holds this op's inserts, so publishing would
				// tear — abandon the whole cycle (the deferred recover fails
				// every op and discards the clone unpublished).
				panic(fmt.Errorf("delete failed after validation: %w", err))
			}
		}
		qw.res = res
		inserted += len(op.Insert)
		deleted += len(op.Delete)
		applied = append(applied, qw)
	}
	if len(applied) == 0 {
		return
	}
	// Durability barrier: the record must be on the log (synced per its
	// policy) before the swap makes the batch visible, so the log is
	// always a prefix-consistent history of what was ever served. The
	// epoch is stable here — the caller holds writeMu, which publish
	// relies on too. During boot-time replay s.wal is still nil, so
	// replayed batches are not re-appended.
	if s.wal != nil {
		rec := &wal.Record{Epoch: s.gen.Load().Epoch + 1, Ops: make([]wal.Op, len(applied))}
		for i, qw := range applied {
			rec.Ops[i] = wal.Op{Table: qw.op.Table, Insert: qw.op.Insert, Delete: qw.op.Delete}
		}
		if err := s.wal.Append(rec); err != nil {
			// Applied to the clone but not logged: acknowledging it would
			// let a crash forget an acknowledged write. Fail the cycle —
			// the clone is discarded unpublished and the served state is
			// unchanged, keeping the log's prefix guarantee intact.
			err = fmt.Errorf("serve: wal append: %w", err)
			for _, qw := range applied {
				qw.res, qw.err = nil, err
			}
			return
		}
	}
	gen := s.publish(next, len(applied), inserted, deleted)
	elapsed := time.Since(start)
	for _, qw := range applied {
		qw.res.Epoch = gen.Epoch
		qw.res.Coalesced = len(applied)
		qw.res.Elapsed = elapsed
	}
	// Advance every pinned query to the new epoch while still holding
	// writeMu: the published graph's delta tracking describes exactly
	// this batch, so eligible subscriptions fold it in O(delta) instead
	// of re-running. (No-op while nothing is pinned — boot-time WAL
	// replay runs before any pin exists.) This runs after the batch's
	// results are finalized, so the writes stay acknowledged even if a
	// refresh fails.
	s.refreshSubscriptions(gen)
	s.maybeCheckpoint(gen)
}

// insertBatch indirects tag.Graph.InsertBatch so the torn-op regression
// test can inject a failure on the "unreachable after validation" path
// and prove a failed op leaves the shared clone untouched.
var insertBatch = (*tag.Graph).InsertBatch

// InsertBatch publishes rows appended to table.
func (m *Maintainer) InsertBatch(table string, rows []relation.Tuple) (*WriteResult, error) {
	return m.Apply(WriteOp{Table: table, Insert: rows})
}

// DeleteBatch publishes the removal of the given tuple vertices.
func (m *Maintainer) DeleteBatch(ids []bsp.VertexID) (*WriteResult, error) {
	return m.Apply(WriteOp{Delete: ids})
}
