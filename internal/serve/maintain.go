package serve

import (
	"fmt"
	"time"

	"repro/internal/bsp"
	"repro/internal/relation"
)

// Maintainer applies writes to a Server without ever blocking its
// readers. Each batch runs the generation protocol:
//
//  1. clone the current generation's graph copy-on-write (O(|V|) slice
//     headers and lookup maps; edge storage is shared until touched),
//  2. apply DeleteBatch then InsertBatch to the private clone — one
//     Thaw/Freeze per batch, re-indexing only the touched vertices,
//  3. publish the clone as the next generation with an atomic pointer
//     swap.
//
// In-flight queries keep their pinned generation until they finish;
// queries that start after the swap see the new one. Writers serialize
// on the server's writer lock, so generations form a single chain.
type Maintainer struct {
	s *Server
}

// WriteOp is one maintenance batch: deletes (by tuple-vertex id,
// applied first) and/or inserts into one relation, published together
// as a single new generation.
type WriteOp struct {
	Table  string // target relation for Insert; may be empty when only deleting
	Insert []relation.Tuple
	Delete []bsp.VertexID
}

// WriteResult reports one published batch.
type WriteResult struct {
	Epoch    uint64         // epoch of the generation the batch created
	Inserted []bsp.VertexID // tuple-vertex ids assigned to inserted rows
	Deleted  int
	Elapsed  time.Duration // clone + apply + publish time
}

// Apply runs one batch through the clone/apply/publish protocol. On
// error the clone is discarded and the served generation is unchanged
// (tag's batch operations validate before mutating, and the clone never
// becomes visible). Safe for concurrent use; batches serialize.
func (m *Maintainer) Apply(op WriteOp) (*WriteResult, error) {
	if len(op.Insert) == 0 && len(op.Delete) == 0 {
		return nil, fmt.Errorf("serve: empty write")
	}
	if len(op.Insert) > 0 && op.Table == "" {
		return nil, fmt.Errorf("serve: insert without a table")
	}

	m.s.writeMu.Lock()
	defer m.s.writeMu.Unlock()

	start := time.Now()
	next := m.s.gen.Load().Graph.Clone()
	res := &WriteResult{Deleted: len(op.Delete)}
	if len(op.Delete) > 0 {
		if err := next.DeleteBatch(op.Delete); err != nil {
			return nil, err
		}
	}
	if len(op.Insert) > 0 {
		ids, err := next.InsertBatch(op.Table, op.Insert)
		if err != nil {
			return nil, err
		}
		res.Inserted = ids
	}
	gen := m.s.publish(next, len(op.Insert), len(op.Delete))
	res.Epoch = gen.Epoch
	res.Elapsed = time.Since(start)
	return res, nil
}

// InsertBatch publishes one generation with rows appended to table.
func (m *Maintainer) InsertBatch(table string, rows []relation.Tuple) (*WriteResult, error) {
	return m.Apply(WriteOp{Table: table, Insert: rows})
}

// DeleteBatch publishes one generation with the given tuple vertices
// removed.
func (m *Maintainer) DeleteBatch(ids []bsp.VertexID) (*WriteResult, error) {
	return m.Apply(WriteOp{Delete: ids})
}
