package serve

import (
	"fmt"
	"time"

	"repro/internal/bsp"
	"repro/internal/relation"
)

// Maintainer applies writes to a Server without ever blocking its
// readers, coalescing concurrent writers into shared generation
// publishes (group commit). Each publish cycle runs the generation
// protocol:
//
//  1. clone the current generation's graph copy-on-write (O(|V|) slice
//     headers and lookup maps; edge storage is shared until touched),
//  2. apply every queued write op to the private clone, in arrival
//     order — one Thaw/Freeze per op, re-indexing only the touched
//     vertices. Each op is pre-validated, so a bad op is skipped (its
//     caller gets the error) without poisoning the ops it shares the
//     clone with,
//  3. publish the clone as the next generation with an atomic pointer
//     swap; every coalesced op reports the same epoch.
//
// The first writer to reach the server's writer lock becomes the
// leader and drains the whole queue, including ops enqueued by writers
// still blocked behind it — those find their result ready when they
// get the lock. A lone writer therefore still pays one clone per
// batch, but N writers colliding pay one clone per *drain*, which is
// what lifts ingest throughput toward the in-place baselines.
//
// In-flight queries keep their pinned generation until they finish;
// queries that start after the swap see the new one.
type Maintainer struct {
	s *Server
}

// WriteOp is one maintenance batch: deletes (by tuple-vertex id,
// applied first) and/or inserts into one relation, published together
// in a single new generation.
type WriteOp struct {
	Table  string // target relation for Insert; may be empty when only deleting
	Insert []relation.Tuple
	Delete []bsp.VertexID
}

// queuedWrite is one write op waiting in the server's coalescing
// queue. done closes once the op has been applied (or rejected) and
// res/err are final.
type queuedWrite struct {
	op   WriteOp
	done chan struct{}
	res  *WriteResult
	err  error
}

// WriteResult reports one published batch.
type WriteResult struct {
	Epoch     uint64         // epoch of the generation the batch landed in
	Inserted  []bsp.VertexID // tuple-vertex ids assigned to inserted rows
	Deleted   int
	Coalesced int           // ops that shared this publish (1 = no coalescing)
	Elapsed   time.Duration // clone + apply + publish time of the shared cycle
}

// Apply runs one batch through the coalescing clone/apply/publish
// protocol. On error the op is skipped and the served generation never
// sees it (validation precedes mutation, and a clone only becomes
// visible if at least one op applied). Safe for concurrent use;
// concurrent batches coalesce into one publish.
func (m *Maintainer) Apply(op WriteOp) (*WriteResult, error) {
	if len(op.Insert) == 0 && len(op.Delete) == 0 {
		return nil, fmt.Errorf("serve: empty write")
	}
	if len(op.Insert) > 0 && op.Table == "" {
		return nil, fmt.Errorf("serve: insert without a table")
	}

	s := m.s
	qw := &queuedWrite{op: op, done: make(chan struct{})}
	s.queueMu.Lock()
	s.writeQ = append(s.writeQ, qw)
	s.queueMu.Unlock()

	s.writeMu.Lock()
	defer s.writeMu.Unlock() // deferred so a panicking batch cannot wedge the writer path
	select {
	case <-qw.done:
		// A previous leader drained this op while we waited for the lock.
		return qw.res, qw.err
	default:
	}
	// This writer is the leader: drain everything queued so far (our own
	// op included — it cannot have been taken, since the queue only
	// drains under writeMu) into one clone→apply→publish cycle.
	s.queueMu.Lock()
	batch := s.writeQ
	s.writeQ = nil
	s.queueMu.Unlock()
	s.applyBatch(batch)
	return qw.res, qw.err
}

// applyBatch runs one clone→apply→publish cycle over a drained queue.
// The caller holds writeMu. If every op fails validation, nothing is
// published and the served generation is unchanged. A panic while
// applying (a latent bug in a batch operation) is converted into an
// error on every unpublished op — the clone is discarded unpublished,
// waiters are released, and the writer path stays usable.
func (s *Server) applyBatch(batch []*queuedWrite) {
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("serve: write batch panicked: %v", r)
			for _, qw := range batch {
				// Epoch 0 is never a published write (epochs start at 1), so
				// any op without one did not land.
				if qw.err == nil && (qw.res == nil || qw.res.Epoch == 0) {
					qw.res, qw.err = nil, err
				}
			}
		}
		for _, qw := range batch {
			close(qw.done)
		}
	}()
	start := time.Now()
	next := s.gen.Load().Graph.Clone()
	applied := make([]*queuedWrite, 0, len(batch))
	inserted, deleted := 0, 0
	for _, qw := range batch {
		op := qw.op
		// Validate the insert side before applying the deletes:
		// DeleteBatch validates on its own before mutating, so after this
		// check the whole op either applies or leaves the clone
		// untouched — a skipped op can never leave half of itself behind.
		if len(op.Insert) > 0 {
			if qw.err = next.ValidateInsert(op.Table, op.Insert); qw.err != nil {
				continue
			}
		}
		if len(op.Delete) > 0 {
			if qw.err = next.DeleteBatch(op.Delete); qw.err != nil {
				continue
			}
		}
		qw.res = &WriteResult{Deleted: len(op.Delete)}
		if len(op.Insert) > 0 {
			ids, err := next.InsertBatch(op.Table, op.Insert)
			if err != nil { // unreachable after ValidateInsert; fail closed
				qw.err, qw.res = err, nil
				continue
			}
			qw.res.Inserted = ids
		}
		inserted += len(op.Insert)
		deleted += len(op.Delete)
		applied = append(applied, qw)
	}
	if len(applied) > 0 {
		gen := s.publish(next, len(applied), inserted, deleted)
		elapsed := time.Since(start)
		for _, qw := range applied {
			qw.res.Epoch = gen.Epoch
			qw.res.Coalesced = len(applied)
			qw.res.Elapsed = elapsed
		}
	}
}

// InsertBatch publishes rows appended to table.
func (m *Maintainer) InsertBatch(table string, rows []relation.Tuple) (*WriteResult, error) {
	return m.Apply(WriteOp{Table: table, Insert: rows})
}

// DeleteBatch publishes the removal of the given tuple vertices.
func (m *Maintainer) DeleteBatch(ids []bsp.VertexID) (*WriteResult, error) {
	return m.Apply(WriteOp{Delete: ids})
}
