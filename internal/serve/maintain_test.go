package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bsp"
	"repro/internal/relation"
	"repro/internal/tag"
)

// itemsCatalog builds a small two-table catalog for maintenance tests.
func itemsCatalog() *relation.Catalog {
	cat := relation.NewCatalog()
	items := relation.New("items", relation.MustSchema(
		relation.Col("ikey", relation.KindInt),
		relation.Col("grp", relation.KindString),
		relation.Col("val", relation.KindInt)))
	for i := 0; i < 60; i++ {
		items.MustAppend(relation.Int(int64(i)), relation.Str(fmt.Sprintf("g%d", i%5)), relation.Int(int64(i%7)))
	}
	cat.MustAdd(items)
	cat.SetPrimaryKey("items", "ikey")

	groups := relation.New("groups", relation.MustSchema(
		relation.Col("gname", relation.KindString),
		relation.Col("weight", relation.KindInt)))
	for i := 0; i < 5; i++ {
		groups.MustAppend(relation.Str(fmt.Sprintf("g%d", i)), relation.Int(int64(i+1)))
	}
	cat.MustAdd(groups)
	cat.SetPrimaryKey("groups", "gname")
	cat.AddForeignKey(relation.ForeignKey{Table: "items", Column: "grp", RefTable: "groups", RefColumn: "gname"})
	return cat
}

// maintBatches builds the deterministic write stream: insert batches of
// fresh keys, then delete batches over the rows the inserts created.
type maintBatch struct {
	insert []relation.Tuple
	delRef int // index of the insert batch whose rows this batch deletes (-1 = insert)
}

func maintStream() []maintBatch {
	var out []maintBatch
	key := int64(1000)
	for b := 0; b < 12; b++ {
		var rows []relation.Tuple
		for r := 0; r < 5; r++ {
			rows = append(rows, relation.Tuple{
				relation.Int(key), relation.Str(fmt.Sprintf("g%d", key%5)), relation.Int(key % 7)})
			key++
		}
		out = append(out, maintBatch{insert: rows, delRef: -1})
	}
	for b := 0; b < 6; b++ {
		out = append(out, maintBatch{delRef: b})
	}
	return out
}

// answerKey canonicalizes a result relation for set membership checks.
func answerKey(r *relation.Relation) string {
	return strings.Join(r.SortedKeys(), "\n")
}

// TestServeWhileWrite is the serve-while-write safety test: concurrent
// readers run against a stream of insert/delete batch swaps, and every
// answer must exactly equal the serial answer of the epoch the server
// says it was answered on — i.e. a published snapshot, never a torn
// in-between state. Run with -race.
func TestServeWhileWrite(t *testing.T) {
	queries := []string{
		"SELECT COUNT(*) FROM items",
		"SELECT grp, SUM(val) FROM items GROUP BY grp",
		"SELECT COUNT(*) FROM items, groups WHERE items.grp = groups.gname AND groups.weight > 2",
	}
	batches := maintStream()

	// Serial reference: replay the stream on a private clone, recording
	// each epoch's answers and the vertex ids each insert batch got
	// (vertex assignment is deterministic, so the live run must match).
	base, err := tag.Build(itemsCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	replay := base.Clone()
	refSrv := New(replay, Options{Sessions: 1})
	expected := make([]map[string]string, len(batches)+1) // epoch -> query -> canonical answer
	record := func(epoch int) {
		expected[epoch] = map[string]string{}
		for _, q := range queries {
			res, err := refSrv.Query(q)
			if err != nil {
				t.Fatalf("replay epoch %d: %v", epoch, err)
			}
			expected[epoch][q] = answerKey(res.Rows)
		}
	}
	record(0)
	insertIDs := make([][]bsp.VertexID, 0, len(batches))
	for i, b := range batches {
		if b.delRef < 0 {
			ids, err := replay.InsertBatch("items", b.insert)
			if err != nil {
				t.Fatal(err)
			}
			insertIDs = append(insertIDs, ids)
		} else {
			if err := replay.DeleteBatch(insertIDs[b.delRef]); err != nil {
				t.Fatal(err)
			}
		}
		// The replay graph is mutated in place between these runs; that is
		// fine because refSrv is used strictly serially here.
		record(i + 1)
	}

	// Live run: four readers vs. one writer publishing the same stream.
	srv := New(base, Options{Sessions: 4})
	maint := srv.Maintainer()
	var writerDone atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 64)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		for i, b := range batches {
			var res *WriteResult
			var err error
			if b.delRef < 0 {
				res, err = maint.InsertBatch("items", b.insert)
			} else {
				res, err = maint.DeleteBatch(insertIDs[b.delRef])
			}
			if err != nil {
				errs <- fmt.Errorf("batch %d: %w", i, err)
				return
			}
			if res.Epoch != uint64(i+1) {
				errs <- fmt.Errorf("batch %d published epoch %d, want %d", i, res.Epoch, i+1)
				return
			}
			if b.delRef < 0 {
				for j, id := range res.Inserted {
					if id != insertIDs[idxOfInsert(batches, i)][j] {
						errs <- fmt.Errorf("batch %d: nondeterministic vertex id", i)
						return
					}
				}
			}
			time.Sleep(500 * time.Microsecond) // let readers overlap each epoch
		}
	}()

	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				q := queries[(i+c)%len(queries)]
				res, err := srv.Query(q)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", c, err)
					return
				}
				if res.Epoch > uint64(len(batches)) {
					errs <- fmt.Errorf("reader %d: epoch %d out of range", c, res.Epoch)
					return
				}
				if got, want := answerKey(res.Rows), expected[res.Epoch][q]; got != want {
					errs <- fmt.Errorf("reader %d: torn answer at epoch %d for %q", c, res.Epoch, q)
					return
				}
				if writerDone.Load() {
					break
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After quiescing, the head must be the final epoch, fully drained
	// down to one live generation, and answering the final serial answer.
	st := srv.Stats()
	if st.Swaps != int64(len(batches)) || st.Epoch != uint64(len(batches)) {
		t.Errorf("swaps/epoch = %d/%d, want %d/%d", st.Swaps, st.Epoch, len(batches), len(batches))
	}
	if st.GenerationsLive != 1 {
		t.Errorf("generations live = %d, want 1", st.GenerationsLive)
	}
	if st.RowsInserted != 60 || st.RowsDeleted != 30 {
		t.Errorf("rows inserted/deleted = %d/%d, want 60/30", st.RowsInserted, st.RowsDeleted)
	}
	for _, q := range queries {
		res, err := srv.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if answerKey(res.Rows) != expected[len(batches)][q] {
			t.Errorf("final answer for %q differs from serial replay", q)
		}
	}
}

// idxOfInsert maps a batch index to its position among insert batches.
func idxOfInsert(batches []maintBatch, i int) int {
	n := 0
	for j := 0; j < i; j++ {
		if batches[j].delRef < 0 {
			n++
		}
	}
	return n
}

// TestGenerationPinAndDrain exercises the refcount protocol directly: a
// pinned old generation must survive a swap and drain only after its
// last reader releases.
func TestGenerationPinAndDrain(t *testing.T) {
	g, err := tag.Build(itemsCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(g, Options{Sessions: 2})
	g0 := srv.Generation()
	if g0.Epoch != 0 || g0.Refs() != 1 {
		t.Fatalf("fresh generation: epoch=%d refs=%d, want 0/1", g0.Epoch, g0.Refs())
	}

	g0.acquire() // simulate an in-flight query pinning epoch 0
	if _, err := srv.Maintainer().InsertBatch("items",
		[]relation.Tuple{{relation.Int(9999), relation.Str("g1"), relation.Int(3)}}); err != nil {
		t.Fatal(err)
	}
	if srv.Generation() == g0 {
		t.Fatal("swap did not replace the head generation")
	}
	if srv.Generation().Epoch != 1 {
		t.Errorf("head epoch = %d, want 1", srv.Generation().Epoch)
	}
	select {
	case <-g0.Drained():
		t.Fatal("pinned generation drained early")
	default:
	}
	if live := srv.Stats().GenerationsLive; live != 2 {
		t.Errorf("generations live = %d, want 2", live)
	}

	// Queries issued now must run on epoch 1 even while epoch 0 is pinned.
	res, err := srv.Query("SELECT COUNT(*) FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 {
		t.Errorf("query epoch = %d, want 1", res.Epoch)
	}

	g0.release()
	select {
	case <-g0.Drained():
	case <-time.After(time.Second):
		t.Fatal("generation did not drain after last release")
	}
	if live := srv.Stats().GenerationsLive; live != 1 {
		t.Errorf("generations live after drain = %d, want 1", live)
	}
}

// TestPreparedLRU: the cache evicts the least-recently-used statement,
// not the whole map.
func TestPreparedLRU(t *testing.T) {
	g, err := tag.Build(itemsCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(g, Options{Sessions: 1, PreparedLimit: 2})
	qa := "SELECT COUNT(*) FROM items"
	qb := "SELECT COUNT(*) FROM groups"
	qc := "SELECT COUNT(*) FROM items WHERE val > 3"

	mustPrepared := func(q string, want bool) {
		t.Helper()
		res, err := srv.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Prepared != want {
			t.Errorf("query %q prepared=%v, want %v", q, res.Prepared, want)
		}
	}
	mustPrepared(qa, false)
	mustPrepared(qb, false)
	mustPrepared(qa, true)  // touch A: B becomes LRU
	mustPrepared(qc, false) // evicts B
	mustPrepared(qa, true)  // A survived
	mustPrepared(qb, false) // B was evicted
	if n := srv.PreparedLen(); n != 2 {
		t.Errorf("prepared cache holds %d entries, want 2", n)
	}
}

// TestHTTPWrite drives the /write endpoint end to end: insert, query at
// the new epoch, delete by returned vertex id, and the read-only guard.
func TestHTTPWrite(t *testing.T) {
	g, err := tag.Build(itemsCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(g, Options{Sessions: 2})
	ts := httptest.NewServer(Handler(srv))
	defer ts.Close()

	post := func(body string) (int, []byte) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/write", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	count := func() float64 {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/query?sql=SELECT%20COUNT(*)%20FROM%20items")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		return qr.Rows[0][0].(float64)
	}

	if n := count(); n != 60 {
		t.Fatalf("initial count = %v, want 60", n)
	}
	code, body := post(`{"table": "items", "insert": [[2000, "g0", 4], [2001, "g1", 5]]}`)
	if code != 200 {
		t.Fatalf("/write status = %d (%s)", code, body)
	}
	var wr WriteResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Epoch != 1 || len(wr.Inserted) != 2 {
		t.Fatalf("write response = %+v, want epoch 1 and 2 ids", wr)
	}
	if n := count(); n != 62 {
		t.Errorf("count after insert = %v, want 62", n)
	}

	code, body = post(fmt.Sprintf(`{"delete": [%d]}`, wr.Inserted[0]))
	if code != 200 {
		t.Fatalf("/write delete status = %d (%s)", code, body)
	}
	if n := count(); n != 61 {
		t.Errorf("count after delete = %v, want 61", n)
	}

	// Bad writes are rejected without publishing a generation.
	before := srv.Stats().Swaps
	for _, bad := range []string{
		`{"table": "nosuch", "insert": [[1]]}`,
		`{"table": "items", "insert": [[1, 2]]}`,
		`{"table": "items", "insert": [["x", "g0", 1]]}`,
		`{"table": "items", "insert": [[1.5, "g0", 1]]}`,
		`{"delete": [999999999]}`,
		`{"delete": [4294967301]}`,
		`{"delete": [-1]}`,
		`{}`,
	} {
		if code, _ := post(bad); code != 422 {
			t.Errorf("bad write %s: status %d, want 422", bad, code)
		}
	}
	if after := srv.Stats().Swaps; after != before {
		t.Errorf("bad writes published %d generations", after-before)
	}

	// Read-only handler refuses writes but still serves queries.
	ro := httptest.NewServer(ReadOnlyHandler(srv))
	defer ro.Close()
	resp, err := ro.Client().Post(ro.URL+"/write", "application/json",
		strings.NewReader(`{"delete": [1]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 403 {
		t.Errorf("read-only /write status = %d, want 403", resp.StatusCode)
	}
}
