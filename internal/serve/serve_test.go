package serve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tag"
	"repro/internal/tpch"
)

func buildTPCH(t testing.TB, scale float64) *tag.Graph {
	t.Helper()
	cat := tpch.Generate(scale, 2021)
	g, err := tag.Build(cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// workload is a mixed slice of the TPC-H-like queries: every aggregation
// class, a correlated query, and a cyclic one.
func workload() []tpch.Query {
	want := map[string]bool{"q1": true, "q3": true, "q4": true, "q5": true, "q6": true, "q10": true}
	var out []tpch.Query
	for _, q := range tpch.Queries() {
		if want[q.ID] {
			out = append(out, q)
		}
	}
	return out
}

// TestConcurrentMatchesSerial is the core safety test: many goroutines
// fire the workload at one shared graph through the session pool, and
// every answer must equal the serial single-session answer. Run with
// -race to catch sharing violations in the Session refactor.
func TestConcurrentMatchesSerial(t *testing.T) {
	g := buildTPCH(t, 0.1)
	queries := workload()

	// Serial reference on a single private session.
	ref := make(map[string]*relation.Relation)
	serial := core.NewSession(g, bsp.Options{Workers: 1})
	for _, q := range queries {
		out, err := serial.Query(q.SQL)
		if err != nil {
			t.Fatalf("serial %s: %v", q.ID, err)
		}
		ref[q.ID] = out
	}

	srv := New(g, Options{Sessions: 8})
	const clients = 16
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds*len(queries))
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger the order so different queries overlap in flight.
				for i := range queries {
					q := queries[(i+c+r)%len(queries)]
					res, err := srv.Query(q.SQL)
					if err != nil {
						errs <- fmt.Errorf("%s: %w", q.ID, err)
						return
					}
					if !relation.EqualMultisetFuzzy(res.Rows, ref[q.ID]) {
						errs <- fmt.Errorf("%s: concurrent result differs from serial", q.ID)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := srv.Stats()
	wantQueries := int64(clients * rounds * len(queries))
	if st.Queries != wantQueries {
		t.Errorf("stats.Queries = %d, want %d", st.Queries, wantQueries)
	}
	if st.Errors != 0 || st.InFlight != 0 {
		t.Errorf("stats errors/inflight = %d/%d, want 0/0", st.Errors, st.InFlight)
	}
	// Every query is either a hit or a miss. Prepare deliberately lets
	// concurrent first requests for the same statement both miss (they
	// race to the write lock and the loser adopts the winner's Analysis),
	// so misses can exceed the distinct-query count by a few — but the
	// cache itself must end up with exactly one entry per statement.
	if st.PreparedHits+st.PreparedMisses != wantQueries {
		t.Errorf("hits+misses = %d, want %d", st.PreparedHits+st.PreparedMisses, wantQueries)
	}
	if st.PreparedMisses < int64(len(queries)) {
		t.Errorf("prepared misses = %d, want >= %d", st.PreparedMisses, len(queries))
	}
	if n := srv.PreparedLen(); n != len(queries) {
		t.Errorf("prepared cache holds %d entries, want %d", n, len(queries))
	}
}

// TestPreparedCacheNormalization: reformatted queries share one cache
// entry via the fingerprint.
func TestPreparedCacheNormalization(t *testing.T) {
	g := buildTPCH(t, 0.05)
	srv := New(g, Options{Sessions: 2})
	variants := []string{
		"SELECT COUNT(*) FROM orders WHERE o_orderkey < 100",
		"select count(*)  from  ORDERS\n where o_orderkey < 100",
		"select COUNT( * ) from orders where O_ORDERKEY < 100",
	}
	var first *relation.Relation
	for i, q := range variants {
		res, err := srv.Query(q)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if i == 0 {
			first = res.Rows
			if res.Prepared {
				t.Error("first run should be a cache miss")
			}
		} else {
			if !res.Prepared {
				t.Errorf("variant %d should hit the prepared cache", i)
			}
			if !relation.EqualMultisetFuzzy(res.Rows, first) {
				t.Errorf("variant %d differs", i)
			}
		}
	}
	if n := srv.PreparedLen(); n != 1 {
		t.Errorf("prepared cache holds %d entries, want 1", n)
	}
}

func TestPoolBlocksAtCapacity(t *testing.T) {
	g := buildTPCH(t, 0.01)
	p := NewPool(g, bsp.Options{Workers: 1}, 2)
	a, b := p.Acquire(), p.Acquire()
	if a == nil || b == nil || a == b {
		t.Fatal("pool must hand out distinct sessions")
	}
	if s := p.TryAcquire(); s != nil {
		t.Fatal("TryAcquire must fail on an exhausted pool")
	}
	p.Release(a)
	if s := p.TryAcquire(); s != a {
		t.Fatal("released session should be reacquired")
	}
}

func TestHTTPQueryAndStats(t *testing.T) {
	g := buildTPCH(t, 0.05)
	srv := New(g, Options{Sessions: 2})
	ts := httptest.NewServer(Handler(srv))
	defer ts.Close()

	// POST /query
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"sql": "SELECT COUNT(*) FROM nation"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.RowCount != 1 || len(qr.Rows) != 1 {
		t.Fatalf("rows = %+v", qr.Rows)
	}
	if n, ok := qr.Rows[0][0].(float64); !ok || n != 25 {
		t.Errorf("COUNT(*) over nation = %v, want 25", qr.Rows[0][0])
	}

	// Malformed SQL surfaces as a JSON error, not a 500.
	resp2, err := ts.Client().Get(ts.URL + "/query?sql=SELEKT")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 422 {
		t.Errorf("bad query status = %d, want 422", resp2.StatusCode)
	}

	// GET /stats reflects the one successful and one failed query.
	resp3, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp3.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Queries != 1 || st.Errors != 1 {
		t.Errorf("stats = %+v, want 1 query and 1 error", st)
	}
	// The scalar COUNT funnels every nation row's partial into the
	// aggregator vertex; the combined message plane must have folded
	// those sends and surfaced the counters through /stats.
	if st.MessagesCombined <= 0 {
		t.Errorf("stats report no combined messages: %+v", st)
	}
	if st.InboxBytesSaved < st.MessagesCombined*24 {
		t.Errorf("saved bytes %d below the Message-slot floor for %d folds",
			st.InboxBytesSaved, st.MessagesCombined)
	}
}
