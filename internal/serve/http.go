package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"time"

	"repro/internal/relation"
)

// QueryRequest is the /query request body (POST) — GET requests pass the
// same field as the "sql" URL parameter instead.
type QueryRequest struct {
	SQL string `json:"sql"`
}

// QueryResponse is the /query response body.
type QueryResponse struct {
	Columns  []string `json:"columns"`
	Rows     [][]any  `json:"rows"`
	RowCount int      `json:"row_count"`
	Agg      string   `json:"agg_class"`
	Acyclic  bool     `json:"acyclic"`
	Prepared bool     `json:"prepared"`
	Millis   float64  `json:"elapsed_ms"`
	Messages int64    `json:"bsp_messages"`
}

// StatsResponse is the /stats response body.
type StatsResponse struct {
	Queries        int64   `json:"queries"`
	Errors         int64   `json:"errors"`
	InFlight       int64   `json:"in_flight"`
	PreparedHits   int64   `json:"prepared_hits"`
	PreparedMisses int64   `json:"prepared_misses"`
	PreparedSize   int     `json:"prepared_size"`
	AvgMillis      float64 `json:"avg_ms"`
	MaxMillis      float64 `json:"max_ms"`
	Supersteps     int     `json:"bsp_supersteps"`
	Messages       int64   `json:"bsp_messages"`
	MessageBytes   int64   `json:"bsp_message_bytes"`
	ComputeOps     int64   `json:"bsp_compute_ops"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP API of a Server:
//
//	POST /query  {"sql": "..."}    → QueryResponse
//	GET  /query?sql=...            → QueryResponse
//	GET  /stats                    → StatsResponse
//	GET  /healthz                  → 200 "ok"
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		query := r.URL.Query().Get("sql")
		if r.Method == http.MethodPost {
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
				return
			}
			var req QueryRequest
			if err := json.Unmarshal(body, &req); err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
				return
			}
			query = req.SQL
		}
		if query == "" {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing sql"})
			return
		}
		res, err := s.Query(query)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, toQueryResponse(res))
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		avg := 0.0
		if st.Queries > 0 {
			avg = ms(st.TotalTime) / float64(st.Queries)
		}
		writeJSON(w, http.StatusOK, StatsResponse{
			Queries:        st.Queries,
			Errors:         st.Errors,
			InFlight:       st.InFlight,
			PreparedHits:   st.PreparedHits,
			PreparedMisses: st.PreparedMisses,
			PreparedSize:   s.PreparedLen(),
			AvgMillis:      avg,
			MaxMillis:      ms(st.MaxTime),
			Supersteps:     st.Cost.Supersteps,
			Messages:       st.Cost.Messages,
			MessageBytes:   st.Cost.MessageBytes,
			ComputeOps:     st.Cost.ComputeOps,
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok"))
	})
	return mux
}

func toQueryResponse(res *Result) QueryResponse {
	out := QueryResponse{
		Columns:  make([]string, 0, res.Rows.Schema.Len()),
		Rows:     make([][]any, 0, len(res.Rows.Tuples)),
		RowCount: res.Rows.Len(),
		Agg:      res.Info.Agg.String(),
		Acyclic:  res.Info.Acyclic,
		Prepared: res.Prepared,
		Millis:   ms(res.Elapsed),
		Messages: res.Cost.Messages,
	}
	for _, c := range res.Rows.Schema.Columns {
		out.Columns = append(out.Columns, c.Name)
	}
	for _, t := range res.Rows.Tuples {
		row := make([]any, len(t))
		for i, v := range t {
			row[i] = jsonValue(v)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// jsonValue maps a relation.Value to its natural JSON representation.
func jsonValue(v relation.Value) any {
	switch v.Kind {
	case relation.KindNull:
		return nil
	case relation.KindInt:
		return v.I
	case relation.KindFloat:
		return v.F
	case relation.KindBool:
		return v.I != 0
	default: // strings and dates render as their stable string form
		return v.String()
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
