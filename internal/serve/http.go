package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/bsp"
	"repro/internal/dist"
	"repro/internal/relation"
)

// QueryRequest is the /query request body (POST) — GET requests pass
// the same fields as the "sql" and "deadline_ms" URL parameters
// instead. DeadlineMS, when positive, bounds the query's execution:
// past it the query aborts at the next superstep barrier and the
// request fails with 408.
type QueryRequest struct {
	SQL        string  `json:"sql"`
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
}

// QueryResponse is the /query response body.
//
// Number encoding: INT cells are emitted as JSON numbers while they fit
// the 2^53 range JSON clients can represent exactly; cells beyond
// ±2^53 are emitted as decimal strings instead, because a JavaScript-
// style client would silently round them. Clients that expect huge
// integers should accept both forms.
type QueryResponse struct {
	Columns  []string `json:"columns"`
	Rows     [][]any  `json:"rows"`
	RowCount int      `json:"row_count"`
	Agg      string   `json:"agg_class"`
	Acyclic  bool     `json:"acyclic"`
	Prepared bool     `json:"prepared"`
	Epoch    uint64   `json:"epoch"`
	Millis   float64  `json:"elapsed_ms"`
	Messages int64    `json:"bsp_messages"`
}

// WriteRequest is the /write request body: rows to insert into one
// table and/or deletes (by tuple-vertex id, which must name vertices
// that already exist), published atomically as a single new graph
// generation — a failed request changes nothing. Insert cells follow the
// table schema: numbers for INT/FLOAT columns (INT also accepts decimal
// strings, the form /query serves for cells beyond ±2^53), strings for
// STRING columns, "YYYY-MM-DD" strings (or day numbers) for DATE
// columns, booleans for BOOL columns, null for NULL.
type WriteRequest struct {
	Table  string  `json:"table,omitempty"`
	Insert [][]any `json:"insert,omitempty"`
	Delete []int64 `json:"delete,omitempty"`
}

// WriteResponse is the /write response body. Inserted holds the
// tuple-vertex ids assigned to the new rows, usable in later deletes.
type WriteResponse struct {
	Epoch    uint64  `json:"epoch"`
	Inserted []int64 `json:"inserted,omitempty"`
	Deleted  int     `json:"deleted"`
	Millis   float64 `json:"elapsed_ms"`
}

// StatsResponse is the /stats response body.
type StatsResponse struct {
	Queries         int64   `json:"queries"`
	Errors          int64   `json:"errors"`
	Canceled        int64   `json:"canceled"`
	Rejected        int64   `json:"rejected"`
	WriteRejected   int64   `json:"write_rejected"`
	WriteQueueDepth int64   `json:"write_queue_depth"`
	InFlight        int64   `json:"in_flight"`
	PreparedHits    int64   `json:"prepared_hits"`
	PreparedMisses  int64   `json:"prepared_misses"`
	PreparedSize    int     `json:"prepared_size"`
	AvgMillis       float64 `json:"avg_ms"`
	MaxMillis       float64 `json:"max_ms"`
	Epoch           uint64  `json:"epoch"`
	Swaps           int64   `json:"swaps"`
	WriteOps        int64   `json:"write_ops"` // > swaps when coalescing shared publishes
	GenerationsLive int64   `json:"generations_live"`
	RowsInserted    int64   `json:"rows_inserted"`
	RowsDeleted     int64   `json:"rows_deleted"`
	Supersteps      int     `json:"bsp_supersteps"`
	Messages        int64   `json:"bsp_messages"`
	MessageBytes    int64   `json:"bsp_message_bytes"`
	ComputeOps      int64   `json:"bsp_compute_ops"`
	// Message-plane combiner activity: logical sends folded en route
	// and the inbox Message slots that never materialized. Messages
	// above still counts every logical send (the paper's M).
	MessagesCombined int64 `json:"bsp_messages_combined"`
	InboxBytesSaved  int64 `json:"bsp_inbox_bytes_saved"`
	CombineFallbacks int64 `json:"bsp_combine_fallbacks"`
	// Durability (the WriteOp WAL; all zero on a memory-only server).
	WALRecords  int64 `json:"wal_records"`
	WALBytes    int64 `json:"wal_bytes"`
	WALFsyncs   int64 `json:"wal_fsyncs"`
	WALReplayed int64 `json:"wal_replayed_epochs"`
	// Checkpointing (snapshot-then-truncate compaction). WALSkipped is
	// the boot-time records the loaded checkpoint made redundant;
	// CheckpointErrors counts failed writes plus invalid checkpoints
	// skipped at boot.
	WALSkipped       int64  `json:"wal_skipped_epochs"`
	WALTruncations   int64  `json:"wal_truncations"`
	Checkpoints      int64  `json:"checkpoints"`
	CheckpointEpoch  uint64 `json:"checkpoint_epoch"`
	CheckpointErrors int64  `json:"checkpoint_errors"`
	// Incremental maintenance of pinned queries (subscriptions).
	PinnedQueries         int64 `json:"pinned_queries"`
	IncrementalHits       int64 `json:"incremental_hits"`
	IncrementalFallbacks  int64 `json:"incremental_fallbacks"`
	IncrementalMismatches int64 `json:"incremental_mismatches"`
	// Distributed serving (zero/absent when serving locally).
	DistParts    int64 `json:"dist_parts,omitempty"`
	DistDegraded bool  `json:"dist_degraded,omitempty"`
}

// SubscribeRequest is the POST /subscribe request body: the query to
// pin. The server answers it once, keeps the answer current across
// every later write (incrementally when the query is eligible), and
// returns a fingerprint handle for polling and unpinning.
type SubscribeRequest struct {
	SQL string `json:"sql"`
}

// SubscribeResponse is the /subscribe response body (POST and GET).
// Incremental reports whether the pinned query is maintained by delta
// folding; Reason names the disqualifier otherwise. Rows follow the
// /query cell encoding and are canonically sorted, so two identical
// answers render identically.
type SubscribeResponse struct {
	FP          string   `json:"fp"`
	Incremental bool     `json:"incremental"`
	Reason      string   `json:"reason,omitempty"`
	Epoch       uint64   `json:"epoch"`
	Pins        int      `json:"pins,omitempty"`
	Columns     []string `json:"columns"`
	Rows        [][]any  `json:"rows"`
	RowCount    int      `json:"row_count"`
}

// UnsubscribeResponse is the DELETE /subscribe response body.
type UnsubscribeResponse struct {
	FP   string `json:"fp"`
	Pins int    `json:"pins"` // pins remaining; 0 means the subscription is gone
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP API of a Server:
//
//	POST /query  {"sql": "..."}    → QueryResponse
//	GET  /query?sql=...            → QueryResponse
//	POST /write  WriteRequest      → WriteResponse (serve-while-write)
//	POST   /subscribe {"sql": "..."}        → SubscribeResponse (pin a query)
//	GET    /subscribe?fp=...&after=&wait_ms= → SubscribeResponse (long-poll)
//	DELETE /subscribe?fp=...                → UnsubscribeResponse
//	GET  /stats                    → StatsResponse
//	GET  /healthz                  → 200 "ok"
func Handler(s *Server) http.Handler { return handler(s, false) }

// ReadOnlyHandler is Handler without the /write endpoint (it answers
// 403), for deployments that ingest through a separate process.
func ReadOnlyHandler(s *Server) http.Handler { return handler(s, true) }

func handler(s *Server, readOnly bool) http.Handler {
	mux := http.NewServeMux()
	maint := s.Maintainer()
	mux.HandleFunc("/write", func(w http.ResponseWriter, r *http.Request) {
		if !allowMethods(w, r, http.MethodPost) {
			return
		}
		if readOnly {
			writeJSON(w, http.StatusForbidden, errorResponse{Error: "server is read-only"})
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		var req WriteRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
			return
		}
		op, err := decodeWrite(s, req)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
			return
		}
		res, err := maint.Apply(op)
		if err != nil {
			if errors.Is(err, ErrOverloaded) {
				w.Header().Set("Retry-After", retryAfterSeconds(s.opts.AdmitWait))
				writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
				return
			}
			writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
			return
		}
		out := WriteResponse{Epoch: res.Epoch, Deleted: res.Deleted, Millis: ms(res.Elapsed)}
		for _, id := range res.Inserted {
			out.Inserted = append(out.Inserted, int64(id))
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		// Strictly GET or POST: treating, say, a DELETE as a GET would
		// mask client bugs behind a successful response.
		if !allowMethods(w, r, http.MethodGet, http.MethodPost) {
			return
		}
		query := r.URL.Query().Get("sql")
		deadlineMS := 0.0
		if v := r.URL.Query().Get("deadline_ms"); v != "" {
			d, err := strconv.ParseFloat(v, 64)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad deadline_ms: " + err.Error()})
				return
			}
			deadlineMS = d
		}
		if r.Method == http.MethodPost {
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
				return
			}
			var req QueryRequest
			if err := json.Unmarshal(body, &req); err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
				return
			}
			query = req.SQL
			if req.DeadlineMS > 0 {
				deadlineMS = req.DeadlineMS
			}
		}
		if query == "" {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing sql"})
			return
		}
		// The request context carries client disconnects; a per-query
		// deadline layers on top. Either way a done context aborts the
		// query at the next superstep barrier and frees its session.
		ctx := r.Context()
		if deadlineMS > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(deadlineMS*float64(time.Millisecond)))
			defer cancel()
		}
		res, err := s.QueryContext(ctx, query)
		if err != nil {
			writeQueryError(w, s, err)
			return
		}
		writeJSON(w, http.StatusOK, toQueryResponse(res))
	})
	mux.HandleFunc("/subscribe", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
				return
			}
			var req SubscribeRequest
			if err := json.Unmarshal(body, &req); err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
				return
			}
			if req.SQL == "" {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing sql"})
				return
			}
			res, err := s.Subscribe(req.SQL)
			if err != nil {
				writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
				return
			}
			writeJSON(w, http.StatusOK, toSubscribeResponse(res))
		case http.MethodGet:
			fp := r.URL.Query().Get("fp")
			if fp == "" {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing fp"})
				return
			}
			after := uint64(0)
			if v := r.URL.Query().Get("after"); v != "" {
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad after: " + err.Error()})
					return
				}
				after = n
			}
			waitMS := 0.0
			if v := r.URL.Query().Get("wait_ms"); v != "" {
				d, err := strconv.ParseFloat(v, 64)
				if err != nil {
					writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad wait_ms: " + err.Error()})
					return
				}
				waitMS = d
			}
			wait, err := clampWait(waitMS)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
				return
			}
			ctx, cancel := context.WithTimeout(r.Context(), wait)
			defer cancel()
			answer, epoch, ok := s.WaitAnswer(ctx, fp, after)
			if !ok {
				writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown subscription " + fp})
				return
			}
			writeJSON(w, http.StatusOK, answerResponse(fp, epoch, answer))
		case http.MethodDelete:
			fp := r.URL.Query().Get("fp")
			if fp == "" {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing fp"})
				return
			}
			remaining, ok := s.Unsubscribe(fp)
			if !ok {
				writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown subscription " + fp})
				return
			}
			writeJSON(w, http.StatusOK, UnsubscribeResponse{FP: fp, Pins: remaining})
		default:
			w.Header().Set("Allow", "POST, GET, DELETE")
			writeJSON(w, http.StatusMethodNotAllowed,
				errorResponse{Error: fmt.Sprintf("method %s not allowed (allow: POST, GET, DELETE)", r.Method)})
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if !allowMethods(w, r, http.MethodGet, http.MethodHead) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		s.WriteMetrics(w)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if !allowMethods(w, r, http.MethodGet, http.MethodHead) {
			return
		}
		st := s.Stats()
		avg := 0.0
		if st.Queries > 0 {
			avg = ms(st.TotalTime) / float64(st.Queries)
		}
		writeJSON(w, http.StatusOK, StatsResponse{
			Queries:          st.Queries,
			Errors:           st.Errors,
			Canceled:         st.Canceled,
			Rejected:         st.Rejected,
			WriteRejected:    st.WriteRejected,
			WriteQueueDepth:  st.WriteQueueDepth,
			InFlight:         st.InFlight,
			PreparedHits:     st.PreparedHits,
			PreparedMisses:   st.PreparedMisses,
			PreparedSize:     s.PreparedLen(),
			AvgMillis:        avg,
			MaxMillis:        ms(st.MaxTime),
			Epoch:            st.Epoch,
			Swaps:            st.Swaps,
			WriteOps:         st.WriteOps,
			GenerationsLive:  st.GenerationsLive,
			RowsInserted:     st.RowsInserted,
			RowsDeleted:      st.RowsDeleted,
			Supersteps:       st.Cost.Supersteps,
			Messages:         st.Cost.Messages,
			MessageBytes:     st.Cost.MessageBytes,
			ComputeOps:       st.Cost.ComputeOps,
			MessagesCombined: st.Cost.MessagesCombined,
			InboxBytesSaved:  st.Cost.InboxBytesSaved,
			CombineFallbacks: st.Cost.CombineFallbacks,
			WALRecords:       st.WALRecords,
			WALBytes:         st.WALBytes,
			WALFsyncs:        st.WALFsyncs,
			WALReplayed:      st.WALReplayed,
			WALSkipped:       st.WALSkipped,
			WALTruncations:   st.WALTruncations,
			Checkpoints:      st.Checkpoints,
			CheckpointEpoch:  st.CheckpointEpoch,
			CheckpointErrors: st.CheckpointErrors,

			PinnedQueries:         st.PinnedQueries,
			IncrementalHits:       st.IncrementalHits,
			IncrementalFallbacks:  st.IncrementalFallbacks,
			IncrementalMismatches: st.IncrementalMismatches,

			DistParts:    st.DistParts,
			DistDegraded: st.DistDegraded,
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !allowMethods(w, r, http.MethodGet, http.MethodHead) {
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok"))
	})
	return mux
}

// writeQueryError maps a query failure to its HTTP shape: admission
// refusals become 429 with a Retry-After header (the client may safely
// retry after the hinted backoff — the query never started), deadline
// and cancellation aborts become 408, and everything else stays the
// 422 the JSON API has always served for bad statements.
func writeQueryError(w http.ResponseWriter, s *Server, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", retryAfterSeconds(s.opts.AdmitWait))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, dist.ErrDegraded):
		// The distributed topology lost a node; no retry will succeed
		// until the cluster is restarted.
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusRequestTimeout, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
	}
}

// retryAfterSeconds renders the Retry-After hint: at least one second
// (the header's granularity), rounded up from the admission wait —
// once that wait expired full, the pool was saturated for its whole
// span, so anything shorter would invite an immediate second refusal.
func retryAfterSeconds(wait time.Duration) string {
	secs := int64((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// allowMethods enforces an endpoint's method set: an unsupported method
// gets 405 with an Allow header per RFC 9110 and the handler stops.
func allowMethods(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m {
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(methods, ", "))
	writeJSON(w, http.StatusMethodNotAllowed,
		errorResponse{Error: fmt.Sprintf("method %s not allowed (allow: %s)", r.Method, strings.Join(methods, ", "))})
	return false
}

func toSubscribeResponse(res *SubscribeResult) SubscribeResponse {
	out := answerResponse(res.FP, res.Epoch, res.Answer)
	out.Incremental = res.Eligible
	out.Reason = res.Reason
	out.Pins = res.Pins
	return out
}

// answerResponse renders a pinned query's current answer; Incremental,
// Reason and Pins stay zero on the long-poll path (they are properties
// of the pin, reported when it is made).
func answerResponse(fp string, epoch uint64, answer *relation.Relation) SubscribeResponse {
	out := SubscribeResponse{
		FP:       fp,
		Epoch:    epoch,
		Columns:  make([]string, 0, answer.Schema.Len()),
		Rows:     make([][]any, 0, len(answer.Tuples)),
		RowCount: answer.Len(),
	}
	for _, c := range answer.Schema.Columns {
		out.Columns = append(out.Columns, c.Name)
	}
	for _, t := range answer.Tuples {
		row := make([]any, len(t))
		for i, v := range t {
			row[i] = JSONValue(v)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

func toQueryResponse(res *Result) QueryResponse {
	out := QueryResponse{
		Columns:  make([]string, 0, res.Rows.Schema.Len()),
		Rows:     make([][]any, 0, len(res.Rows.Tuples)),
		RowCount: res.Rows.Len(),
		Agg:      res.Info.Agg.String(),
		Acyclic:  res.Info.Acyclic,
		Prepared: res.Prepared,
		Epoch:    res.Epoch,
		Millis:   ms(res.Elapsed),
		Messages: res.Cost.Messages,
	}
	for _, c := range res.Rows.Schema.Columns {
		out.Columns = append(out.Columns, c.Name)
	}
	for _, t := range res.Rows.Tuples {
		row := make([]any, len(t))
		for i, v := range t {
			row[i] = JSONValue(v)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// decodeWrite converts a WriteRequest to a Maintainer op, decoding
// insert rows against the target table's schema (schemas are immutable
// across generations, so the current head's catalog is authoritative).
func decodeWrite(s *Server, req WriteRequest) (WriteOp, error) {
	op := WriteOp{Table: req.Table}
	for _, id := range req.Delete {
		// Guard the int64 → int32 narrowing: a wrapped id could alias a
		// live vertex and silently delete the wrong row.
		if id < 0 || id > math.MaxInt32 {
			return op, fmt.Errorf("serve: no vertex %d", id)
		}
		op.Delete = append(op.Delete, bsp.VertexID(id))
	}
	if len(req.Insert) == 0 {
		return op, nil
	}
	if req.Table == "" {
		return op, fmt.Errorf("serve: insert without a table")
	}
	rel := s.Graph().Catalog.Get(req.Table)
	if rel == nil {
		return op, fmt.Errorf("serve: unknown table %q", req.Table)
	}
	for i, raw := range req.Insert {
		row, err := decodeRow(rel.Schema, raw)
		if err != nil {
			return op, fmt.Errorf("row %d: %w", i, err)
		}
		op.Insert = append(op.Insert, row)
	}
	return op, nil
}

// decodeRow maps JSON cells to typed values per the schema.
func decodeRow(schema *relation.Schema, raw []any) (relation.Tuple, error) {
	if len(raw) != schema.Len() {
		return nil, fmt.Errorf("arity %d != schema arity %d", len(raw), schema.Len())
	}
	row := make(relation.Tuple, len(raw))
	for i, cell := range raw {
		col := schema.Columns[i]
		switch cell := cell.(type) {
		case nil:
			row[i] = relation.Null
		case float64:
			switch col.Kind {
			case relation.KindInt, relation.KindDate:
				if cell != math.Trunc(cell) || math.Abs(cell) > 1<<53 {
					return nil, fmt.Errorf("column %s: %v is not an exact integer", col.Name, cell)
				}
				if col.Kind == relation.KindInt {
					row[i] = relation.Int(int64(cell))
				} else {
					row[i] = relation.Date(int64(cell))
				}
			case relation.KindFloat:
				row[i] = relation.Float(cell)
			default:
				return nil, fmt.Errorf("column %s: number for %s column", col.Name, col.Kind)
			}
		case string:
			switch col.Kind {
			case relation.KindString:
				row[i] = relation.Str(cell)
			case relation.KindInt:
				// Mirror of the output encoding: INT cells beyond ±2^53 are
				// served as decimal strings, so /query output must round-trip
				// back through /write.
				n, err := strconv.ParseInt(cell, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("column %s: %q is not an integer", col.Name, cell)
				}
				row[i] = relation.Int(n)
			case relation.KindDate:
				v, err := relation.ParseDate(cell)
				if err != nil {
					return nil, fmt.Errorf("column %s: %w", col.Name, err)
				}
				row[i] = v
			default:
				return nil, fmt.Errorf("column %s: string for %s column", col.Name, col.Kind)
			}
		case bool:
			if col.Kind != relation.KindBool {
				return nil, fmt.Errorf("column %s: bool for %s column", col.Name, col.Kind)
			}
			row[i] = relation.Bool(cell)
		default:
			return nil, fmt.Errorf("column %s: unsupported JSON value %T", col.Name, cell)
		}
	}
	return row, nil
}

// maxExactJSONInt is the largest integer magnitude a float64-backed
// JSON client decodes exactly (2^53).
const maxExactJSONInt = int64(1) << 53

// JSONValue maps a relation.Value to its natural JSON representation.
// INT cells beyond ±2^53 are rendered as decimal strings: most JSON
// clients decode numbers into float64, which would silently round them
// (see the QueryResponse doc). Exported so cross-protocol identity
// checks can render binary-protocol rows exactly as /query would.
func JSONValue(v relation.Value) any {
	switch v.Kind {
	case relation.KindNull:
		return nil
	case relation.KindInt:
		if v.I > maxExactJSONInt || v.I < -maxExactJSONInt {
			return strconv.FormatInt(v.I, 10)
		}
		return v.I
	case relation.KindFloat:
		return v.F
	case relation.KindBool:
		return v.I != 0
	default: // strings and dates render as their stable string form
		return v.String()
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
