package serve

import (
	"fmt"

	"repro/internal/checkpoint"
)

// The checkpointer bounds recovery work: it snapshots a pinned
// generation to an epoch-stamped checkpoint file in the WAL dir and
// then truncates the covered log prefix, so the next boot loads the
// image and replays only the suffix. Everything runs off the write
// path — the snapshot is taken from a pinned (immutable, frozen)
// generation in a background goroutine, and the only write-path cost
// is the due-check under ckptMu after a publish.

// maybeCheckpoint starts a background checkpoint of gen if one is due
// under the periodic policy (Options.CheckpointEvery epochs and/or
// Options.CheckpointBytes of log growth since the last one) and none
// is already in flight. Called by applyBatch right after a publish;
// it never blocks on I/O.
func (s *Server) maybeCheckpoint(gen *Generation) {
	if s.wal == nil {
		return
	}
	every, grow := s.opts.CheckpointEvery, s.opts.CheckpointBytes
	if every <= 0 && grow <= 0 {
		return
	}
	s.ckptMu.Lock()
	due := every > 0 && gen.Epoch >= s.ckptLastEpoch+uint64(every)
	if !due && grow > 0 && s.wal.Stats().Bytes-s.ckptLastBytes >= grow {
		due = true
	}
	if !due || s.ckptInflight {
		s.ckptMu.Unlock()
		return
	}
	s.ckptInflight = true
	s.ckptMu.Unlock()

	// Pin the head generation (it may already be newer than gen — a
	// newer image covers strictly more of the log, so take it) and
	// snapshot it off the write path.
	pinned := s.acquireGen()
	go func() {
		defer pinned.release()
		_, err := s.checkpointNow(pinned, !s.opts.CheckpointNoTruncate)
		s.ckptMu.Lock()
		if err != nil {
			s.ckptErrors++
		}
		s.ckptInflight = false
		s.ckptMu.Unlock()
	}()
}

// checkpointNow writes a checkpoint of gen's graph and, when truncate
// is set, truncates the WAL prefix it covers. The caller owns the
// inflight flag and the generation pin. Counter updates happen only
// after both steps succeed; a checkpoint that wrote but failed to
// truncate reports the error (the next attempt re-snapshots and
// re-truncates — correctness never depends on truncation happening).
func (s *Server) checkpointNow(gen *Generation, truncate bool) (uint64, error) {
	if _, err := checkpoint.Write(s.opts.WALDir, gen.Graph, gen.Epoch, s.baseFP); err != nil {
		return 0, fmt.Errorf("serve: %w", err)
	}
	if truncate {
		if err := s.wal.TruncatePrefix(gen.Epoch); err != nil {
			return 0, fmt.Errorf("serve: truncating wal after checkpoint: %w", err)
		}
	}
	s.ckptMu.Lock()
	s.ckptCount++
	s.ckptLastEpoch = gen.Epoch
	s.ckptLastBytes = s.wal.Stats().Bytes
	s.ckptMu.Unlock()
	return gen.Epoch, nil
}

// Checkpoint synchronously snapshots the currently served generation
// into the WAL dir and returns the epoch the image captures. With
// truncate it also drops the covered log prefix (the normal
// compaction step); without it the full log is kept, so even a torn
// or lost checkpoint still boots via full replay. Errors if the
// server is memory-only or a periodic checkpoint is mid-flight.
func (m *Maintainer) Checkpoint(truncate bool) (uint64, error) {
	s := m.s
	if s.wal == nil {
		return 0, fmt.Errorf("serve: checkpoint requires a WAL dir")
	}
	s.ckptMu.Lock()
	if s.ckptInflight {
		s.ckptMu.Unlock()
		return 0, fmt.Errorf("serve: checkpoint already in flight")
	}
	s.ckptInflight = true
	s.ckptMu.Unlock()

	gen := s.acquireGen()
	defer gen.release()
	epoch, err := s.checkpointNow(gen, truncate)
	s.ckptMu.Lock()
	if err != nil {
		s.ckptErrors++
	}
	s.ckptInflight = false
	s.ckptMu.Unlock()
	return epoch, err
}
