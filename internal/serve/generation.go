package serve

import (
	"sync"
	"sync/atomic"

	"repro/internal/tag"
)

// Generation is one immutable, servable snapshot of the TAG graph: a
// frozen tag.Graph, the session pool bound to it, and an epoch number
// that increases by one per published write batch.
//
// Lifecycle: a generation is created frozen, published by an atomic
// pointer swap on the Server, pinned by every query that starts while it
// is current (refcount), and drained once the swap has removed it from
// the serving path and the last pinned query has finished. The publisher
// itself holds one reference from creation to swap-out, so a current
// generation can never drain.
type Generation struct {
	Epoch uint64
	Graph *tag.Graph

	pool *Pool

	refs      atomic.Int64
	drained   chan struct{}
	drainOnce sync.Once
	onDrained func()
}

// newGeneration builds a generation over a frozen graph. Its session
// pool starts empty and fills lazily: with the engine's sparse message
// plane a session costs O(#workers) to build and O(active) to run, so
// spinning sessions up on the serving path is cheap and a write burst
// no longer pays pool-size × O(|V|) per published generation. The
// returned generation carries the publisher's reference.
func newGeneration(epoch uint64, g *tag.Graph, opts Options, onDrained func()) *Generation {
	if !g.G.Frozen() {
		g.G.Freeze()
	}
	gen := &Generation{
		Epoch:     epoch,
		Graph:     g,
		pool:      NewPool(g, opts.Engine, opts.Sessions),
		drained:   make(chan struct{}),
		onDrained: onDrained,
	}
	gen.refs.Store(1)
	return gen
}

// acquire pins the generation for one in-flight query.
func (g *Generation) acquire() { g.refs.Add(1) }

// release unpins the generation. When the last reference (including the
// publisher's, dropped at swap-out) is gone the generation is drained:
// its Drained channel closes and the drain hook fires exactly once.
func (g *Generation) release() {
	if g.refs.Add(-1) == 0 {
		g.drainOnce.Do(func() {
			close(g.drained)
			if g.onDrained != nil {
				g.onDrained()
			}
		})
	}
}

// Refs returns the current pin count (the publisher's reference counts
// as one while the generation is current). For observability and tests.
func (g *Generation) Refs() int64 { return g.refs.Load() }

// Pool returns the generation's session pool. Callers may Acquire from
// it directly to prewarm sessions or to hold them (overload drills);
// anything acquired must be Released back.
func (g *Generation) Pool() *Pool { return g.pool }

// Drained returns a channel that closes once the generation has been
// swapped out and every query pinned to it has finished. After that no
// reader can observe the generation's graph, so its memory is
// reclaimable.
func (g *Generation) Drained() <-chan struct{} { return g.drained }
