package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tag"
)

// TestSubscribeIncrementalMaintenance pins a mix of incrementally
// eligible and ineligible queries, drives a write stream through the
// Maintainer, and asserts after every epoch that each pinned answer is
// byte-identical to a cold run on the same generation — with
// VerifyIncremental on, so the server itself also cross-checks every
// fold and counts divergences.
func TestSubscribeIncrementalMaintenance(t *testing.T) {
	g, err := tag.Build(itemsCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(g, Options{Sessions: 2, VerifyIncremental: true})
	maint := srv.Maintainer()

	queries := []struct {
		sql     string
		wantInc bool
	}{
		{"SELECT grp, SUM(val) FROM items GROUP BY grp", true},
		{"SELECT COUNT(*) FROM items", true},
		{"SELECT COUNT(*) FROM items, groups WHERE items.grp = groups.gname AND groups.weight > 2", true},
		// Subquery: pinned, but maintained by cold re-runs.
		{"SELECT gname FROM groups WHERE weight > (SELECT COUNT(*) FROM items WHERE grp = gname)", false},
	}
	fps := make([]string, len(queries))
	for i, q := range queries {
		res, err := srv.Subscribe(q.sql)
		if err != nil {
			t.Fatalf("subscribe %q: %v", q.sql, err)
		}
		if res.Eligible != q.wantInc {
			t.Errorf("subscribe %q: incremental=%v (%s), want %v", q.sql, res.Eligible, res.Reason, q.wantInc)
		}
		if res.Epoch != 0 {
			t.Errorf("subscribe %q: epoch %d, want 0", q.sql, res.Epoch)
		}
		fps[i] = res.FP
	}
	if n := srv.Pinned(); n != len(queries) {
		t.Fatalf("pinned = %d, want %d", n, len(queries))
	}

	// Re-pinning the same statement (reformatted) shares the subscription.
	res, err := srv.Subscribe("select   grp, sum(val) from items group by grp")
	if err != nil {
		t.Fatal(err)
	}
	if res.FP != fps[0] || res.Pins != 2 {
		t.Errorf("re-pin: fp %s pins %d, want %s / 2", res.FP, res.Pins, fps[0])
	}
	if n := srv.Pinned(); n != len(queries) {
		t.Errorf("pinned after re-pin = %d, want %d", n, len(queries))
	}

	checkAll := func(epoch uint64) {
		t.Helper()
		for i, q := range queries {
			answer, gotEpoch, ok := srv.SubscriptionAnswer(fps[i])
			if !ok {
				t.Fatalf("subscription %s vanished", fps[i])
			}
			if gotEpoch != epoch {
				t.Fatalf("%q: answer at epoch %d, want %d", q.sql, gotEpoch, epoch)
			}
			cold, err := srv.Query(q.sql)
			if err != nil {
				t.Fatalf("cold %q: %v", q.sql, err)
			}
			if cold.Epoch != epoch {
				t.Fatalf("cold run answered on epoch %d, want %d", cold.Epoch, epoch)
			}
			if !bytes.Equal(core.CanonicalBytes(answer), core.CanonicalBytes(cold.Rows)) {
				t.Fatalf("%q epoch %d: pinned answer diverges from cold run\npinned: %v\ncold:   %v",
					q.sql, epoch, answer.Tuples, cold.Rows.Tuples)
			}
		}
	}
	checkAll(0)

	// Insert-only epochs: every eligible subscription must fold.
	var inserted []int64
	for e := 1; e <= 3; e++ {
		var rows []relation.Tuple
		for r := 0; r < 4; r++ {
			k := int64(5000 + e*10 + r)
			rows = append(rows, relation.Tuple{
				relation.Int(k), relation.Str(fmt.Sprintf("g%d", k%5)), relation.Int(k % 7)})
		}
		wr, err := maint.InsertBatch("items", rows)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range wr.Inserted {
			inserted = append(inserted, int64(id))
		}
		checkAll(wr.Epoch)
	}
	st := srv.Stats()
	// 3 insert epochs x 3 eligible pins fold; the subquery pin re-runs.
	if st.IncrementalHits != 9 {
		t.Errorf("IncrementalHits = %d, want 9", st.IncrementalHits)
	}
	if st.IncrementalFallbacks != 3 {
		t.Errorf("IncrementalFallbacks = %d, want 3", st.IncrementalFallbacks)
	}

	// A delete epoch: the retraction forces eligible pins to fall back
	// too — and the rebuilt answers must still match cold.
	wr, err := maint.DeleteBatch([]bsp.VertexID{bsp.VertexID(inserted[0]), bsp.VertexID(inserted[1])})
	if err != nil {
		t.Fatal(err)
	}
	checkAll(wr.Epoch)

	st = srv.Stats()
	if st.PinnedQueries != int64(len(queries)) {
		t.Errorf("PinnedQueries = %d, want %d", st.PinnedQueries, len(queries))
	}
	if st.IncrementalFallbacks != 7 {
		t.Errorf("IncrementalFallbacks = %d, want 7", st.IncrementalFallbacks)
	}
	if st.IncrementalMismatches != 0 {
		t.Errorf("IncrementalMismatches = %d, want 0 — a fold diverged from its cold verify run", st.IncrementalMismatches)
	}

	// Unpin: the shared subscription survives its first unpin, dies on
	// the second; the rest unpin cleanly.
	if rem, ok := srv.Unsubscribe(fps[0]); !ok || rem != 1 {
		t.Errorf("first unpin: remaining=%d ok=%v, want 1/true", rem, ok)
	}
	if rem, ok := srv.Unsubscribe(fps[0]); !ok || rem != 0 {
		t.Errorf("second unpin: remaining=%d ok=%v, want 0/true", rem, ok)
	}
	if _, ok := srv.Unsubscribe(fps[0]); ok {
		t.Error("unpinning a dead subscription reported ok")
	}
	if n := srv.Pinned(); n != len(queries)-1 {
		t.Errorf("pinned after unpins = %d, want %d", n, len(queries)-1)
	}
}

// TestSubscribeHTTP drives the /subscribe endpoints end to end: pin,
// long-poll across a write, metrics exposure, unpin, and the 4xx error
// contract for hostile inputs (never a 500, epoch never moved).
func TestSubscribeHTTP(t *testing.T) {
	g, err := tag.Build(itemsCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(g, Options{Sessions: 2, VerifyIncremental: true})
	ts := httptest.NewServer(Handler(srv))
	defer ts.Close()

	post := func(path, body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	status, out := post("/subscribe", `{"sql": "SELECT grp, COUNT(*) FROM items GROUP BY grp"}`)
	if status != http.StatusOK {
		t.Fatalf("subscribe: status %d (%v)", status, out)
	}
	fp, _ := out["fp"].(string)
	if fp == "" || out["incremental"] != true {
		t.Fatalf("subscribe response: %v", out)
	}
	if rc, _ := out["row_count"].(float64); rc != 5 {
		t.Fatalf("subscribe row_count = %v, want 5", out["row_count"])
	}

	// Long-poll for the next epoch while a write lands.
	type pollResult struct {
		status int
		body   map[string]any
	}
	poll := make(chan pollResult, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/subscribe?after=0&wait_ms=5000&fp=" + url.QueryEscape(fp))
		if err != nil {
			poll <- pollResult{status: -1}
			return
		}
		defer resp.Body.Close()
		var body map[string]any
		json.NewDecoder(resp.Body).Decode(&body)
		poll <- pollResult{status: resp.StatusCode, body: body}
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park
	if status, out := post("/write", `{"table": "items", "insert": [[9001, "g1", 3]]}`); status != http.StatusOK {
		t.Fatalf("write: status %d (%v)", status, out)
	}
	select {
	case pr := <-poll:
		if pr.status != http.StatusOK {
			t.Fatalf("long-poll: status %d", pr.status)
		}
		if epoch, _ := pr.body["epoch"].(float64); epoch != 1 {
			t.Fatalf("long-poll epoch = %v, want 1", pr.body["epoch"])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never woke after the write")
	}

	// The refreshed answer matches a cold /query byte-for-byte via the
	// exported metrics' mismatch counter (verify mode is on) and directly.
	answer, epoch, ok := srv.SubscriptionAnswer(fp)
	if !ok || epoch != 1 {
		t.Fatalf("SubscriptionAnswer: epoch %d ok %v", epoch, ok)
	}
	cold, err := srv.Query("SELECT grp, COUNT(*) FROM items GROUP BY grp")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(core.CanonicalBytes(answer), core.CanonicalBytes(cold.Rows)) {
		t.Fatal("pinned answer diverges from cold /query")
	}

	// Metrics expose the subscription gauges and counters.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met, _ := readAll(resp)
	for _, want := range []string{
		"tagserve_pinned_queries 1",
		"tagserve_incremental_hits_total 1",
		"tagserve_incremental_fallbacks_total 0",
		"tagserve_incremental_mismatches_total 0",
	} {
		if !strings.Contains(met, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// /stats carries the same counters.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if stats.PinnedQueries != 1 || stats.IncrementalHits != 1 || stats.IncrementalMismatches != 0 {
		t.Errorf("/stats pinned/hits/mismatches = %d/%d/%d, want 1/1/0",
			stats.PinnedQueries, stats.IncrementalHits, stats.IncrementalMismatches)
	}

	// Hostile inputs: every one a 4xx, never a 5xx, and the epoch must
	// not move (subscription handling is read-only on the graph).
	epochBefore := srv.Generation().Epoch
	hostile := []struct {
		method, path, body string
	}{
		{http.MethodPost, "/subscribe", `{"sql": ""}`},
		{http.MethodPost, "/subscribe", `{`},
		{http.MethodPost, "/subscribe", `{"sql": "SELECT FROM WHERE"}`},
		{http.MethodPost, "/subscribe", `{"sql": "SELECT nope FROM missing_table"}`},
		{http.MethodGet, "/subscribe", ""},
		{http.MethodGet, "/subscribe?fp=deadbeef&wait_ms=1", ""},
		{http.MethodGet, "/subscribe?after=notanumber&fp=" + url.QueryEscape(fp), ""},
		{http.MethodGet, "/subscribe?wait_ms=-5&fp=" + url.QueryEscape(fp), ""},
		{http.MethodDelete, "/subscribe", ""},
		{http.MethodDelete, "/subscribe?fp=deadbeef", ""},
		{http.MethodPut, "/subscribe", `{}`},
	}
	for _, h := range hostile {
		req, err := http.NewRequest(h.method, ts.URL+h.path, strings.NewReader(h.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode < 400 || resp.StatusCode >= 500 {
			t.Errorf("%s %s %q: status %d, want 4xx", h.method, h.path, h.body, resp.StatusCode)
		}
	}
	if got := srv.Generation().Epoch; got != epochBefore {
		t.Errorf("hostile subscribe traffic moved the epoch %d -> %d", epochBefore, got)
	}

	// Unpin over HTTP.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/subscribe?fp="+url.QueryEscape(fp), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unsubscribe: status %d", resp.StatusCode)
	}
	if n := srv.Pinned(); n != 0 {
		t.Errorf("pinned after DELETE = %d, want 0", n)
	}
}

// TestSubscribeConcurrentWithWrites races subscribers, long-pollers and
// writers; run with -race. Every observed answer must match a cold run
// of the epoch it claims (VerifyIncremental enforces the fold side; the
// reader side checks the served pair is internally consistent).
func TestSubscribeConcurrentWithWrites(t *testing.T) {
	g, err := tag.Build(itemsCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(g, Options{Sessions: 4, VerifyIncremental: true})
	maint := srv.Maintainer()

	res, err := srv.Subscribe("SELECT grp, SUM(val) FROM items GROUP BY grp")
	if err != nil {
		t.Fatal(err)
	}
	fp := res.FP

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)

	// Writers: continuous small insert batches.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				k := int64(7000 + w*100 + i)
				_, err := maint.InsertBatch("items", []relation.Tuple{
					{relation.Int(k), relation.Str(fmt.Sprintf("g%d", k%5)), relation.Int(k % 7)}})
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Pollers: ride the epoch chain.
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
				answer, epoch, ok := srv.WaitAnswer(ctx, fp, last)
				cancel()
				if !ok {
					errs <- fmt.Errorf("subscription vanished")
					return
				}
				if epoch < last {
					errs <- fmt.Errorf("epoch went backwards: %d -> %d", last, epoch)
					return
				}
				if answer == nil {
					errs <- fmt.Errorf("nil answer at epoch %d", epoch)
					return
				}
				last = epoch
			}
		}()
	}
	// Churners: pin/unpin another statement concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			r, err := srv.Subscribe("SELECT COUNT(*) FROM items")
			if err != nil {
				errs <- err
				return
			}
			srv.Unsubscribe(r.FP)
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Writers and churner finish on their own; stop the pollers then.
	for {
		select {
		case err := <-errs:
			close(stop)
			t.Fatal(err)
		case <-time.After(50 * time.Millisecond):
		}
		if srv.Stats().Swaps >= 20 {
			break
		}
	}
	close(stop)
	<-done
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := srv.Stats()
	if st.IncrementalMismatches != 0 {
		t.Errorf("IncrementalMismatches = %d, want 0", st.IncrementalMismatches)
	}
	if st.IncrementalHits == 0 {
		t.Error("no incremental hit across 20 insert-only epochs")
	}
	answer, epoch, ok := srv.SubscriptionAnswer(fp)
	if !ok || epoch != 20 {
		t.Fatalf("final answer: epoch %d ok %v, want 20", epoch, ok)
	}
	cold, err := srv.Query("SELECT grp, SUM(val) FROM items GROUP BY grp")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(core.CanonicalBytes(answer), core.CanonicalBytes(cold.Rows)) {
		t.Fatal("final pinned answer diverges from cold run")
	}
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
