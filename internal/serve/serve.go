// Package serve is the concurrent query-serving layer over the TAG-join
// executor. The TAG encoding is query-independent and read-mostly: one
// frozen tag.Graph can answer any number of simultaneous read queries.
// A Server wraps the graph with a pool of core.Sessions (each owning its
// private BSP engine and per-query caches), an LRU prepared-statement
// cache keyed by the normalized SQL fingerprint, and aggregate serving
// statistics.
//
// Writes no longer require quiescence. The Server serves from an
// epoch-numbered Generation (frozen graph + session pool) behind an
// atomic pointer; a Maintainer applies InsertBatch/DeleteBatch to a
// private copy-on-write clone of the current graph and publishes the
// result as the next generation with a single pointer swap. Queries pin
// the generation they started on and drain it when they finish, so
// readers always see a consistent snapshot — never a graph mid-mutation
// — while writes land continuously. See docs/ARCHITECTURE.md for the
// full swap protocol.
package serve

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/tag"
)

// Options configures a Server.
type Options struct {
	// Sessions is the pool size of each graph generation — the maximum
	// number of queries evaluated simultaneously on one epoch; further
	// queries on that epoch queue. Because generations drain
	// asynchronously, total in-flight queries (and session memory) can
	// transiently reach GenerationsLive x Sessions during write bursts.
	// Defaults to 4.
	Sessions int
	// Engine configures each session's BSP engine. Workers defaults to 1:
	// under concurrent serving, parallelism comes from running many
	// queries at once rather than many workers per superstep.
	Engine bsp.Options
	// PreparedLimit bounds the prepared-statement cache (entries);
	// defaults to 1024. The cache evicts the least-recently-used entry
	// once full, so a hot working set of statements survives bursts of
	// one-off queries.
	PreparedLimit int
}

func (o Options) withDefaults() Options {
	if o.Sessions <= 0 {
		o.Sessions = 4
	}
	if o.Engine.Workers == 0 {
		o.Engine.Workers = 1
	}
	if o.PreparedLimit <= 0 {
		o.PreparedLimit = 1024
	}
	return o
}

// Stats aggregates serving activity across all sessions of a Server.
type Stats struct {
	Queries        int64         // completed successfully
	Errors         int64         // failed (parse, analyze, or execution)
	InFlight       int64         // currently executing
	PreparedHits   int64         // served from the prepared-statement cache
	PreparedMisses int64         // analyzed afresh
	TotalTime      time.Duration // summed wall time of successful queries
	MaxTime        time.Duration // slowest successful query
	Cost           bsp.Stats     // summed BSP cost measures of all queries

	// Write/maintenance activity (the generation scheme).
	Epoch           uint64 // epoch of the currently served generation (filled at snapshot time)
	Swaps           int64  // generations published since startup
	WriteOps        int64  // write ops applied (> Swaps when coalescing shares a publish)
	RowsInserted    int64  // rows applied through the Maintainer
	RowsDeleted     int64  // rows removed through the Maintainer
	GenerationsLive int64  // published but not yet drained generations
}

// String renders the stats compactly.
func (s Stats) String() string {
	avg := time.Duration(0)
	if s.Queries > 0 {
		avg = s.TotalTime / time.Duration(s.Queries)
	}
	return fmt.Sprintf("queries=%d errors=%d inflight=%d prepared=%d/%d avg=%v max=%v epoch=%d swaps=%d live=%d [%s]",
		s.Queries, s.Errors, s.InFlight, s.PreparedHits, s.PreparedHits+s.PreparedMisses,
		avg.Round(time.Microsecond), s.MaxTime.Round(time.Microsecond),
		s.Epoch, s.Swaps, s.GenerationsLive, s.Cost)
}

// Result is one query's answer plus its per-query execution report.
type Result struct {
	Rows     *relation.Relation
	Info     core.ExecInfo
	Cost     bsp.Stats // this query's BSP cost only
	Elapsed  time.Duration
	Prepared bool   // answered via a prepared-statement cache hit
	Epoch    uint64 // generation the query was answered on
}

// Server serves concurrent queries over epoch'd TAG graph generations.
type Server struct {
	opts Options
	gen  atomic.Pointer[Generation]
	live atomic.Int64 // published, not-yet-drained generations

	// writeMu is the writer leader lock: one clone/apply/publish cycle
	// at a time, so generations form a chain and no write is lost to a
	// racing sibling clone. Readers never take it. Writers that pile up
	// behind it enqueue on writeQ first; the lock holder drains the
	// whole queue into its cycle (group commit).
	writeMu sync.Mutex
	queueMu sync.Mutex
	writeQ  []*queuedWrite

	prepared preparedCache

	statsMu sync.Mutex
	stats   Stats
}

// New builds a Server over g, publishing it as generation 0. The graph
// must already be frozen (tag.Build leaves it frozen). After New, the
// graph belongs to the serving layer: mutate it only through a
// Maintainer, which clones rather than touching the served snapshot.
func New(g *tag.Graph, opts Options) *Server {
	opts = opts.withDefaults()
	if !g.G.Frozen() {
		g.G.Freeze()
	}
	s := &Server{opts: opts}
	s.prepared.init(opts.PreparedLimit)
	s.live.Store(1)
	s.gen.Store(newGeneration(0, g, opts, func() { s.live.Add(-1) }))
	return s
}

// Graph returns the currently served TAG graph (the head generation's).
func (s *Server) Graph() *tag.Graph { return s.gen.Load().Graph }

// Generation returns the currently served generation. The caller must
// not mutate it; to keep it alive across its own queries, use Query,
// which pins per call.
func (s *Server) Generation() *Generation { return s.gen.Load() }

// Maintainer returns a write handle for this server. All handles share
// the server's writer lock, so any number of them serialize correctly.
func (s *Server) Maintainer() *Maintainer { return &Maintainer{s: s} }

// acquireGen pins and returns the current generation. The retry loop
// closes the load/pin race: if a swap lands between the pointer load and
// the refcount increment, the pin may have hit an already-drained
// generation, so it is dropped and the new head pinned instead.
func (s *Server) acquireGen() *Generation {
	for {
		gen := s.gen.Load()
		gen.acquire()
		if s.gen.Load() == gen {
			return gen
		}
		gen.release()
	}
}

// publish installs g as the next generation, carrying ops coalesced
// write ops. Must be called with writeMu held (Maintainer does); the
// epoch is derived from the head at swap time, which the lock keeps
// stable.
func (s *Server) publish(g *tag.Graph, ops, inserted, deleted int) *Generation {
	old := s.gen.Load()
	gen := newGeneration(old.Epoch+1, g, s.opts, func() { s.live.Add(-1) })
	s.live.Add(1)
	s.gen.Store(gen)
	old.release() // drop the publisher's reference; old drains when its readers finish

	s.statsMu.Lock()
	s.stats.Swaps++
	s.stats.WriteOps += int64(ops)
	s.stats.RowsInserted += int64(inserted)
	s.stats.RowsDeleted += int64(deleted)
	s.statsMu.Unlock()
	return gen
}

// Prepare analyzes a query, consulting the fingerprint-keyed LRU cache.
// It returns the shared Analysis (execution is read-only on it) and
// whether it was a cache hit. Prepared statements stay valid across
// generation swaps: schemas are immutable, and execution resolves rows
// through the session's own generation, not the Analysis.
func (s *Server) Prepare(query string) (*sql.Analysis, bool, error) {
	fp, err := sql.Fingerprint(query)
	if err != nil {
		return nil, false, err
	}
	if an, ok := s.prepared.get(fp); ok {
		return an, true, nil
	}
	an, err := sql.AnalyzeString(s.gen.Load().Graph.Catalog, query)
	if err != nil {
		return nil, false, err
	}
	// On a race, adopt whichever Analysis reached the cache first.
	return s.prepared.put(fp, an), false, nil
}

// Query evaluates a SQL string on a pooled session of the current
// generation, blocking until a session is free. Safe for arbitrary
// concurrent use, including concurrently with Maintainer writes: the
// generation is pinned for the duration of the query, so a swap landing
// mid-flight never changes what this query sees.
func (s *Server) Query(query string) (*Result, error) {
	an, hit, err := s.Prepare(query)
	s.statsMu.Lock()
	if err != nil {
		s.stats.Errors++
		s.stats.PreparedMisses++
		s.statsMu.Unlock()
		return nil, err
	}
	if hit {
		s.stats.PreparedHits++
	} else {
		s.stats.PreparedMisses++
	}
	s.stats.InFlight++
	s.statsMu.Unlock()

	// Unpin via defer so a panicking query (recovered by net/http) cannot
	// leak the generation pin or the pool slot.
	gen := s.acquireGen()
	defer gen.release()
	sess := gen.pool.Acquire()
	defer gen.pool.Release(sess)
	start := time.Now()
	before := sess.Stats()
	rows, err := sess.Run(an)
	after := sess.Stats()
	elapsed := time.Since(start)
	res := &Result{Rows: rows, Info: sess.Info, Elapsed: elapsed, Prepared: hit,
		Cost: after.Sub(before), Epoch: gen.Epoch}

	s.statsMu.Lock()
	s.stats.InFlight--
	if err != nil {
		s.stats.Errors++
	} else {
		s.stats.Queries++
		s.stats.TotalTime += elapsed
		if elapsed > s.stats.MaxTime {
			s.stats.MaxTime = elapsed
		}
		s.stats.Cost.Add(res.Cost)
	}
	s.statsMu.Unlock()
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Stats returns a snapshot of the aggregate serving statistics.
func (s *Server) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	st := s.stats
	st.Epoch = s.gen.Load().Epoch
	st.GenerationsLive = s.live.Load()
	return st
}

// ResetStats zeroes the aggregate serving statistics.
func (s *Server) ResetStats() {
	s.statsMu.Lock()
	s.stats = Stats{InFlight: s.stats.InFlight}
	s.statsMu.Unlock()
}

// PreparedLen returns the number of cached prepared statements.
func (s *Server) PreparedLen() int { return s.prepared.len() }

// preparedCache is a mutex-guarded LRU of analyzed statements keyed by
// SQL fingerprint.
type preparedCache struct {
	mu      sync.Mutex
	limit   int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type preparedEntry struct {
	fp string
	an *sql.Analysis
}

func (c *preparedCache) init(limit int) {
	c.limit = limit
	c.entries = make(map[string]*list.Element)
	c.order = list.New()
}

func (c *preparedCache) get(fp string) (*sql.Analysis, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[fp]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*preparedEntry).an, true
}

// put inserts an analysis unless the fingerprint is already cached, in
// which case the cached value wins (concurrent first preparations race
// to the lock; the loser adopts the winner's Analysis). Returns the
// authoritative Analysis either way.
func (c *preparedCache) put(fp string, an *sql.Analysis) *sql.Analysis {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[fp]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*preparedEntry).an
	}
	for len(c.entries) >= c.limit {
		back := c.order.Back()
		if back == nil {
			break
		}
		c.order.Remove(back)
		delete(c.entries, back.Value.(*preparedEntry).fp)
	}
	c.entries[fp] = c.order.PushFront(&preparedEntry{fp: fp, an: an})
	return an
}

func (c *preparedCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
