// Package serve is the concurrent query-serving layer over the TAG-join
// executor. The TAG encoding is query-independent and read-mostly: one
// frozen tag.Graph can answer any number of simultaneous read queries.
// A Server wraps the graph with a pool of core.Sessions (each owning its
// private BSP engine and per-query caches), an LRU prepared-statement
// cache keyed by the normalized SQL fingerprint, and aggregate serving
// statistics.
//
// Writes no longer require quiescence. The Server serves from an
// epoch-numbered Generation (frozen graph + session pool) behind an
// atomic pointer; a Maintainer applies InsertBatch/DeleteBatch to a
// private copy-on-write clone of the current graph and publishes the
// result as the next generation with a single pointer swap. Queries pin
// the generation they started on and drain it when they finish, so
// readers always see a consistent snapshot — never a graph mid-mutation
// — while writes land continuously. See docs/ARCHITECTURE.md for the
// full swap protocol.
package serve

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bsp"
	"repro/internal/checkpoint"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/tag"
	"repro/internal/wal"
)

// Options configures a Server.
type Options struct {
	// Sessions is the pool size of each graph generation — the maximum
	// number of queries evaluated simultaneously on one epoch; further
	// queries on that epoch queue. Because generations drain
	// asynchronously, total in-flight queries (and session memory) can
	// transiently reach GenerationsLive x Sessions during write bursts.
	// Defaults to 4.
	Sessions int
	// Engine configures each session's BSP engine. Workers defaults to 1:
	// under concurrent serving, parallelism comes from running many
	// queries at once rather than many workers per superstep.
	Engine bsp.Options
	// PreparedLimit bounds the prepared-statement cache (entries);
	// defaults to 1024. The cache evicts the least-recently-used entry
	// once full, so a hot working set of statements survives bursts of
	// one-off queries.
	PreparedLimit int

	// WALDir enables write durability: every published batch is appended
	// to an append-only WriteOp log in this directory *before* the
	// generation swap, and Open replays the log on boot — rebuilding the
	// exact pre-crash epoch sequence. Empty disables the WAL. Only Open
	// honors these fields; New always builds a memory-only server.
	WALDir string
	// WALSync selects the log's sync policy (default wal.SyncInterval:
	// group-commit fsyncs, bounded loss at near-unsynced throughput).
	WALSync wal.Policy
	// WALSyncInterval bounds the fsync lag under wal.SyncInterval;
	// defaults to 100ms.
	WALSyncInterval time.Duration

	// CheckpointEvery, when > 0, checkpoints the served state every N
	// published epochs: a background snapshot of a pinned generation is
	// written atomically next to the WAL, then the WAL prefix it covers
	// is truncated. Boot loads the newest valid checkpoint and replays
	// only the WAL suffix past it, so recovery time tracks checkpoint
	// cadence instead of total history. 0 disables periodic
	// checkpointing (Maintainer.Checkpoint still works on demand).
	CheckpointEvery int
	// CheckpointBytes, when > 0, additionally triggers a checkpoint once
	// at least this many WAL bytes have been appended since the last one
	// — bounding log growth under large-row workloads where an epoch
	// count alone would let the log balloon.
	CheckpointBytes int64
	// CheckpointNoTruncate keeps the full WAL after periodic checkpoints
	// instead of truncating the covered prefix. Boot still prefers the
	// newest checkpoint, but a torn or corrupt image can always fall
	// back to a full replay — the log remains a complete history (at the
	// cost of unbounded growth). Useful for point-in-time archives and
	// for crash drills that corrupt checkpoints on purpose.
	CheckpointNoTruncate bool

	// AdmitWait is the admission-control bound: how long a query waits
	// for a pooled session — and a write for queue space — before the
	// server refuses it with ErrOverloaded instead of queueing
	// unboundedly (HTTP maps the refusal to 429 + Retry-After, the
	// binary protocol to a RETRY frame). Defaults to 100ms; negative
	// disables admission control and restores unbounded waits.
	AdmitWait time.Duration
	// WriteQueue bounds how many writes may be queued or applying at
	// once; writes beyond it wait AdmitWait for space and are then
	// refused with ErrOverloaded. Defaults to 256. Ignored when
	// AdmitWait is negative.
	WriteQueue int

	// VerifyIncremental checks every incrementally folded pinned-query
	// answer byte-identical to a cold re-run of the same epoch, on the
	// write path. A divergence counts Stats.IncrementalMismatches and the
	// cold answer wins. This makes every write pay a full query per
	// pinned subscription — it is a correctness harness for tests,
	// scenario drills and benchmarks, not a production default.
	VerifyIncremental bool

	// Dist, when non-nil, routes every query to a distributed topology
	// instead of the local session pool: the coordinator dispatches the
	// SQL to every node and each computes the identical answer over its
	// own partition, with the data exchange on real sockets. Analysis
	// (and the prepared-statement cache) stays local, so parse errors
	// never reach the topology. Distributed serving is read-only and
	// queries serialize per topology — the cluster is one distributed
	// engine, not a pool. Cancellation cannot abort a dispatched
	// distributed query: the nodes advance in lockstep and run to
	// completion. A degraded topology (a node died) refuses queries
	// with dist.ErrDegraded, which HTTP maps to 503.
	Dist *dist.Coordinator
}

func (o Options) withDefaults() Options {
	if o.Sessions <= 0 {
		o.Sessions = 4
	}
	if o.Engine.Workers == 0 {
		o.Engine.Workers = 1
	}
	if o.PreparedLimit <= 0 {
		o.PreparedLimit = 1024
	}
	if o.WALSyncInterval <= 0 {
		o.WALSyncInterval = 100 * time.Millisecond
	}
	if o.AdmitWait == 0 {
		o.AdmitWait = 100 * time.Millisecond
	}
	if o.WriteQueue <= 0 {
		o.WriteQueue = 256
	}
	return o
}

// ErrOverloaded is the admission-control refusal: the session pool (or
// the write queue) stayed exhausted for the whole bounded wait. The
// request was never started, so retrying after a backoff is always
// safe; the HTTP layer translates it to 429 + Retry-After and the
// binary protocol to a typed RETRY frame.
var ErrOverloaded = errors.New("serve: overloaded, retry later")

// Protocol labels for per-protocol serving metrics (latency histograms
// on /metrics).
const (
	ProtoHTTP   = "http"
	ProtoBinary = "binary"
)

// Stats aggregates serving activity across all sessions of a Server.
type Stats struct {
	Queries        int64         // completed successfully
	Errors         int64         // failed (parse, analyze, or execution)
	Canceled       int64         // aborted by deadline or client cancellation
	Rejected       int64         // refused by admission control (pool exhausted)
	WriteRejected  int64         // writes refused by admission control (queue full)
	InFlight       int64         // currently executing
	PreparedHits   int64         // served from the prepared-statement cache
	PreparedMisses int64         // analyzed afresh
	TotalTime      time.Duration // summed wall time of successful queries
	MaxTime        time.Duration // slowest successful query
	Cost           bsp.Stats     // summed BSP cost measures of all queries

	// Write/maintenance activity (the generation scheme).
	Epoch           uint64 // epoch of the currently served generation (filled at snapshot time)
	Swaps           int64  // generations published since startup
	WriteOps        int64  // write ops applied (> Swaps when coalescing shares a publish)
	RowsInserted    int64  // rows applied through the Maintainer
	RowsDeleted     int64  // rows removed through the Maintainer
	GenerationsLive int64  // published but not yet drained generations
	WriteQueueDepth int64  // writes queued or applying (gauge, filled at snapshot time)

	// Durability (the WriteOp WAL; all zero on a memory-only server).
	WALRecords  int64 // records appended since boot (one per published batch)
	WALBytes    int64 // bytes appended since boot (frame headers included)
	WALFsyncs   int64 // fsyncs issued by the sync policy
	WALReplayed int64 // records replayed at boot (the suffix past the checkpoint)

	// Checkpointing (snapshot-then-truncate compaction).
	WALSkipped       int64  // boot: records covered by the loaded checkpoint, not replayed
	WALTruncations   int64  // log compactions (prefix rewrites after checkpoints)
	Checkpoints      int64  // checkpoints written since boot
	CheckpointEpoch  uint64 // epoch covered by the newest checkpoint (boot-loaded or written)
	CheckpointErrors int64  // checkpoint attempts that failed or were skipped as invalid

	// Incremental maintenance of pinned queries (subscriptions).
	PinnedQueries         int64 // currently pinned queries (gauge, filled at snapshot time)
	IncrementalHits       int64 // pinned-query epoch advances folded from the write delta
	IncrementalFallbacks  int64 // pinned-query epoch advances that re-ran the query cold
	IncrementalMismatches int64 // VerifyIncremental divergences (cold answer won)

	// Distributed serving (gauges, filled at snapshot time; zero when
	// serving from the local session pool).
	DistParts    int64 // topology size, coordinator included
	DistDegraded bool  // the topology lost a node and refuses queries
}

// String renders the stats compactly.
func (s Stats) String() string {
	avg := time.Duration(0)
	if s.Queries > 0 {
		avg = s.TotalTime / time.Duration(s.Queries)
	}
	return fmt.Sprintf("queries=%d errors=%d inflight=%d prepared=%d/%d avg=%v max=%v epoch=%d swaps=%d live=%d [%s]",
		s.Queries, s.Errors, s.InFlight, s.PreparedHits, s.PreparedHits+s.PreparedMisses,
		avg.Round(time.Microsecond), s.MaxTime.Round(time.Microsecond),
		s.Epoch, s.Swaps, s.GenerationsLive, s.Cost)
}

// Result is one query's answer plus its per-query execution report.
type Result struct {
	Rows     *relation.Relation
	Info     core.ExecInfo
	Cost     bsp.Stats // this query's BSP cost only
	Elapsed  time.Duration
	Prepared bool   // answered via a prepared-statement cache hit
	Epoch    uint64 // generation the query was answered on
}

// Server serves concurrent queries over epoch'd TAG graph generations.
type Server struct {
	opts Options
	gen  atomic.Pointer[Generation]
	live atomic.Int64 // published, not-yet-drained generations

	// writeMu is the writer leader lock: one clone/apply/publish cycle
	// at a time, so generations form a chain and no write is lost to a
	// racing sibling clone. Readers never take it. Writers that pile up
	// behind it enqueue on writeQ first; the lock holder drains the
	// whole queue into its cycle (group commit).
	writeMu sync.Mutex
	queueMu sync.Mutex
	writeQ  []*queuedWrite
	// writeSlots bounds the write queue: a write occupies a slot from
	// admission until its result is final, so len(writeSlots) is the
	// queue-depth gauge. Nil when admission control is disabled.
	writeSlots chan struct{}

	// lat holds the per-protocol query latency histograms exported on
	// /metrics. The map is built in New and never written afterwards,
	// so concurrent reads need no lock; the histograms themselves are
	// atomic.
	lat map[string]*Histogram

	prepared preparedCache

	// wal, when non-nil, receives one record per publish cycle before
	// the generation swap (see Maintainer). It is attached by Open after
	// replay finishes, so replayed batches are never re-appended; it is
	// never changed afterwards, and applyBatch runs under writeMu, so
	// the plain read there is safe.
	wal         *wal.Writer
	walReplayed int64
	walSkipped  int64
	// baseFP fingerprints the base catalog this server's WAL dir is
	// bound to; checkpoints carry it so an image can never be applied to
	// a foreign base. Set by Open, constant afterwards.
	baseFP string

	// ckptMu guards the checkpointer's trigger state. The write path
	// only peeks at it after a publish; the snapshot itself runs in a
	// background goroutine on a pinned (immutable) generation, off the
	// write path.
	ckptMu        sync.Mutex
	ckptInflight  bool
	ckptLastEpoch uint64 // epoch covered by the newest checkpoint
	ckptLastBytes int64  // wal bytes counter when it was taken
	ckptCount     int64
	ckptErrors    int64

	// subMu guards the pinned-query registry. The write path refreshes
	// every subscription under writeMu right after each publish (see
	// refreshSubscriptions); subMu is only held for registry lookups and
	// snapshots, never across query execution.
	subMu sync.Mutex
	subs  map[string]*subscription

	statsMu sync.Mutex
	stats   Stats
}

// New builds a Server over g, publishing it as generation 0. The graph
// must already be frozen (tag.Build leaves it frozen). After New, the
// graph belongs to the serving layer: mutate it only through a
// Maintainer, which clones rather than touching the served snapshot.
func New(g *tag.Graph, opts Options) *Server {
	opts = opts.withDefaults()
	if !g.G.Frozen() {
		g.G.Freeze()
	}
	s := &Server{opts: opts, subs: map[string]*subscription{}}
	s.prepared.init(opts.PreparedLimit)
	if opts.AdmitWait >= 0 {
		s.writeSlots = make(chan struct{}, opts.WriteQueue)
	}
	s.lat = map[string]*Histogram{
		ProtoHTTP:   NewHistogram(),
		ProtoBinary: NewHistogram(),
	}
	s.live.Store(1)
	s.gen.Store(newGeneration(0, g, opts, func() { s.live.Add(-1) }))
	return s
}

// Open is New plus durability. When opts.WALDir is set it boots via
// snapshot-load + suffix-replay: recover the write-ahead log
// (truncating any tail torn by a crash), load the newest valid
// checkpoint in the dir — CRC-checked and fingerprint-matched to this
// base — install it as the serving generation at the epoch it
// captures, and replay only the WAL records past that epoch through
// the maintenance path, one publish cycle per record. When no
// checkpoint exists, or every one on disk is torn, corrupt, or foreign,
// boot falls back to the passed base graph and a full replay — the
// pre-checkpoint behavior. Only then is the log attached, so new writes
// are appended (and synced per opts.WALSync) before their generation
// swap. Replay relies on the write path being deterministic:
// re-applying the same ops to the same state assigns the same
// tuple-vertex ids, which keeps logged delete ids valid.
//
// With an empty WALDir, Open is exactly New.
func Open(g *tag.Graph, opts Options) (*Server, error) {
	s := New(g, opts)
	if opts.WALDir == "" {
		return s, nil
	}
	opts = opts.withDefaults()
	w, err := wal.Open(opts.WALDir, wal.Options{Policy: opts.WALSync, Interval: opts.WALSyncInterval})
	if err != nil {
		return nil, err
	}
	// Bind the log to this base catalog before replaying: logged delete
	// ids resolve by position, so replaying onto a different base (other
	// workload, scale, or generator seed) would silently delete
	// unrelated rows. The first Open of a dir claims it; later Opens
	// must present the same base.
	fp := baseFingerprint(g)
	fpPath := filepath.Join(opts.WALDir, baseFPFile)
	if data, err := os.ReadFile(fpPath); err == nil {
		if have := strings.TrimSpace(string(data)); have != fp {
			w.Close()
			return nil, fmt.Errorf("serve: wal dir %s belongs to a different base catalog (log base %s, this server %s); replaying it here would rewrite history",
				opts.WALDir, have, fp)
		}
	} else if errors.Is(err, os.ErrNotExist) {
		// Claim atomically (temp + fsync + rename): a crash mid-claim must
		// not leave a partial fingerprint that bricks the dir with a bogus
		// "different base" refusal on every later boot.
		if err := codec.WriteFileAtomic(fpPath, []byte(fp+"\n")); err != nil {
			w.Close()
			return nil, fmt.Errorf("serve: claiming wal dir: %w", err)
		}
	} else {
		w.Close()
		return nil, fmt.Errorf("serve: %w", err)
	}
	s.baseFP = fp

	// Snapshot-load: install the newest valid checkpoint as the serving
	// state, then replay only the suffix past it. Invalid checkpoints are
	// skipped (counted), never half-applied — the checkpointer truncates
	// the covered WAL prefix only after its snapshot is durable, so a
	// skipped checkpoint always leaves a log that reaches the same state
	// the long way.
	var ckptEpoch uint64
	if ckptG, epoch, skipped, err := checkpoint.LoadNewest(opts.WALDir, fp); err != nil {
		w.Close()
		return nil, fmt.Errorf("serve: %w", err)
	} else {
		s.ckptErrors = int64(skipped)
		if ckptG != nil {
			ckptEpoch = epoch
			s.ckptLastEpoch = epoch
			old := s.gen.Load()
			s.live.Add(1)
			s.gen.Store(newGeneration(epoch, ckptG, s.opts, func() { s.live.Add(-1) }))
			old.release()
		}
	}

	_, err = wal.Replay(opts.WALDir, func(rec *wal.Record) error {
		if rec.Epoch <= ckptEpoch {
			// Covered by the loaded checkpoint; replaying it would
			// double-apply.
			s.walSkipped++
			return nil
		}
		batch := make([]*queuedWrite, len(rec.Ops))
		for i, op := range rec.Ops {
			batch[i] = &queuedWrite{
				op:   WriteOp{Table: op.Table, Insert: op.Insert, Delete: op.Delete},
				done: make(chan struct{}),
			}
		}
		s.writeMu.Lock()
		s.applyBatch(batch)
		s.writeMu.Unlock()
		s.walReplayed++
		for i, qw := range batch {
			// Only applied ops were logged, so a replay failure means the
			// log and the boot state have diverged — refuse to serve a
			// state that differs from what was acknowledged. The epoch
			// check also catches a hole in history (e.g. a log truncated
			// for a checkpoint that then failed to load): replay onto the
			// fallback base would produce the wrong epochs, so boot fails
			// loudly instead of silently misapplying the suffix.
			if qw.err != nil {
				return fmt.Errorf("serve: replaying op %d of epoch %d: %w", i, rec.Epoch, qw.err)
			}
			if qw.res.Epoch != rec.Epoch {
				return fmt.Errorf("serve: replay produced epoch %d for logged epoch %d", qw.res.Epoch, rec.Epoch)
			}
		}
		return nil
	})
	if err != nil {
		w.Close()
		return nil, err
	}
	s.wal = w
	return s, nil
}

// baseFPFile sits next to the log and names the base catalog it was
// recorded against. Written via codec.WriteFileAtomic so a crash
// mid-claim leaves either no file or the complete fingerprint.
const baseFPFile = "base.fp"

// baseFingerprint identifies a base catalog: graph size, every table's
// name, schema and row count, plus a row-content sample (so the same
// shape generated from a different seed does not pass). Deterministic
// generators rebuild the identical catalog, hence the identical
// fingerprint, across restarts.
func baseFingerprint(g *tag.Graph) string {
	h := sha256.New()
	fmt.Fprintf(h, "graph %d %d\n", g.G.NumVertices(), g.G.NumEdges())
	names := g.Catalog.Names()
	sort.Strings(names)
	for _, name := range names {
		rel := g.Catalog.Get(name)
		fmt.Fprintf(h, "table %s rows %d cols", name, rel.Len())
		for _, col := range rel.Schema.Columns {
			fmt.Fprintf(h, " %s:%s", col.Name, col.Kind)
		}
		fmt.Fprintln(h)
		if rel.Len() > 0 {
			fmt.Fprintf(h, "first %v last %v\n", rel.Tuples[0], rel.Tuples[rel.Len()-1])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Graph returns the currently served TAG graph (the head generation's).
func (s *Server) Graph() *tag.Graph { return s.gen.Load().Graph }

// WAL returns the attached write-ahead log, or nil on a memory-only
// server. Callers may Sync it to force durability ahead of the sync
// policy; appends stay owned by the maintenance path. Compaction goes
// through Maintainer.Checkpoint (or the periodic checkpointer): a log
// prefix may only be truncated after a checkpoint covering it is
// durably on disk, because boot replays just the suffix past the
// newest loadable checkpoint.
func (s *Server) WAL() *wal.Writer { return s.wal }

// Generation returns the currently served generation. The caller must
// not mutate it; to keep it alive across its own queries, use Query,
// which pins per call.
func (s *Server) Generation() *Generation { return s.gen.Load() }

// Maintainer returns a write handle for this server. All handles share
// the server's writer lock, so any number of them serialize correctly.
func (s *Server) Maintainer() *Maintainer { return &Maintainer{s: s} }

// acquireGen pins and returns the current generation. The retry loop
// closes the load/pin race: if a swap lands between the pointer load and
// the refcount increment, the pin may have hit an already-drained
// generation, so it is dropped and the new head pinned instead.
func (s *Server) acquireGen() *Generation {
	for {
		gen := s.gen.Load()
		gen.acquire()
		if s.gen.Load() == gen {
			return gen
		}
		gen.release()
	}
}

// publish installs g as the next generation, carrying ops coalesced
// write ops. Must be called with writeMu held (Maintainer does); the
// epoch is derived from the head at swap time, which the lock keeps
// stable.
func (s *Server) publish(g *tag.Graph, ops, inserted, deleted int) *Generation {
	old := s.gen.Load()
	gen := newGeneration(old.Epoch+1, g, s.opts, func() { s.live.Add(-1) })
	s.live.Add(1)
	s.gen.Store(gen)
	old.release() // drop the publisher's reference; old drains when its readers finish

	s.statsMu.Lock()
	s.stats.Swaps++
	s.stats.WriteOps += int64(ops)
	s.stats.RowsInserted += int64(inserted)
	s.stats.RowsDeleted += int64(deleted)
	s.statsMu.Unlock()
	return gen
}

// Prepare analyzes a query, consulting the fingerprint-keyed LRU cache.
// It returns the shared Analysis (execution is read-only on it) and
// whether it was a cache hit. Prepared statements stay valid across
// generation swaps: schemas are immutable, and execution resolves rows
// through the session's own generation, not the Analysis.
func (s *Server) Prepare(query string) (*sql.Analysis, bool, error) {
	an, _, hit, err := s.prepareFP(query)
	return an, hit, err
}

// prepareFP is Prepare plus the normalized fingerprint, which the
// binary protocol hands to clients so later requests can skip SQL
// parsing entirely (see QueryPrepared).
func (s *Server) prepareFP(query string) (*sql.Analysis, string, bool, error) {
	fp, err := sql.Fingerprint(query)
	if err != nil {
		return nil, "", false, err
	}
	if an, _, ok := s.prepared.get(fp); ok {
		return an, fp, true, nil
	}
	an, err := sql.AnalyzeString(s.gen.Load().Graph.Catalog, query)
	if err != nil {
		return nil, "", false, err
	}
	// On a race, adopt whichever Analysis reached the cache first.
	return s.prepared.put(fp, query, an), fp, false, nil
}

// Query evaluates a SQL string on a pooled session of the current
// generation, blocking (up to the admission bound) until a session is
// free. Safe for arbitrary concurrent use, including concurrently with
// Maintainer writes: the generation is pinned for the duration of the
// query, so a swap landing mid-flight never changes what this query
// sees.
func (s *Server) Query(query string) (*Result, error) {
	return s.QueryContext(context.Background(), query)
}

// QueryContext is Query with a deadline/cancellation context: once ctx
// is done the query aborts at the next superstep barrier, releases its
// pooled session, and returns an error wrapping ctx.Err(). Aborted
// queries count Stats.Canceled, not Errors.
func (s *Server) QueryContext(ctx context.Context, query string) (*Result, error) {
	res, _, err := s.QueryOn(ctx, query, ProtoHTTP)
	return res, err
}

// QueryOn is the shared request-execution core behind every serving
// protocol: both the HTTP JSON handler and the binary protocol call
// it, so deadline, admission, accounting and latency-histogram
// semantics are identical on each. proto labels the per-protocol
// latency histogram (ProtoHTTP or ProtoBinary). The returned string is
// the statement's normalized fingerprint — binary-protocol clients
// cache it to skip SQL parsing on later requests.
func (s *Server) QueryOn(ctx context.Context, query, proto string) (*Result, string, error) {
	an, fp, hit, err := s.prepareFP(query)
	if err != nil {
		s.statsMu.Lock()
		s.stats.Errors++
		s.stats.PreparedMisses++
		s.statsMu.Unlock()
		return nil, "", err
	}
	res, err := s.execute(ctx, an, query, hit, proto)
	return res, fp, err
}

// QueryPrepared executes a statement previously prepared on this
// server by its fingerprint — the binary protocol's fast path, which
// skips lexing and analysis entirely. ok is false when the fingerprint
// is not (or no longer) cached; the client then falls back to sending
// the SQL text, which re-primes the cache.
func (s *Server) QueryPrepared(ctx context.Context, fp, proto string) (res *Result, ok bool, err error) {
	an, sqlText, hit := s.prepared.get(fp)
	if !hit {
		return nil, false, nil
	}
	res, err = s.execute(ctx, an, sqlText, true, proto)
	return res, true, err
}

// execute runs an analyzed query on a pooled session with admission
// control, cancellation, and outcome accounting — or, on a
// distributed server, dispatches its SQL text to the topology. Every
// protocol's query path funnels through here.
func (s *Server) execute(ctx context.Context, an *sql.Analysis, sqlText string, hit bool, proto string) (*Result, error) {
	s.statsMu.Lock()
	if hit {
		s.stats.PreparedHits++
	} else {
		s.stats.PreparedMisses++
	}
	s.stats.InFlight++
	s.statsMu.Unlock()

	// Every exit below must undo the in-flight count — including a query
	// that panics inside Run: net/http recovers handler panics, so the
	// process would survive with InFlight permanently inflated and the
	// failure never counted. The decrement and the outcome accounting
	// therefore live in one deferred closure (res stays nil on the error
	// and panic paths), mirroring the generation-pin and pool-slot defers
	// below. Admission refusals and cancellations count their own stats
	// so overload and deadline behavior are observable separately from
	// real failures.
	var res *Result
	var failure error
	defer func() {
		s.statsMu.Lock()
		s.stats.InFlight--
		switch {
		case res != nil:
			s.stats.Queries++
			s.stats.TotalTime += res.Elapsed
			if res.Elapsed > s.stats.MaxTime {
				s.stats.MaxTime = res.Elapsed
			}
			s.stats.Cost.Add(res.Cost)
		case errors.Is(failure, ErrOverloaded):
			s.stats.Rejected++
		case errors.Is(failure, context.Canceled) || errors.Is(failure, context.DeadlineExceeded):
			s.stats.Canceled++
		default:
			s.stats.Errors++
		}
		s.statsMu.Unlock()
	}()

	if s.opts.Dist != nil {
		// Distributed path: the topology is the engine. The local
		// Analysis already vetted the SQL; the coordinator serializes
		// queries and every node computes the identical answer. The pool
		// and the generation pin stay out of it — distributed serving is
		// read-only, so the boot generation is the only one.
		start := time.Now()
		dres, err := s.opts.Dist.Query(sqlText)
		elapsed := time.Since(start)
		if err != nil {
			failure = err
			return nil, err
		}
		res = &Result{Rows: dres.Rows, Info: dres.Info, Elapsed: elapsed,
			Prepared: hit, Cost: dres.Cost, Epoch: s.gen.Load().Epoch}
		if h := s.lat[proto]; h != nil {
			h.Observe(elapsed)
		}
		return res, nil
	}

	// Unpin via defer so a panicking query (recovered by net/http) cannot
	// leak the generation pin or the pool slot.
	gen := s.acquireGen()
	defer gen.release()
	sess, err := gen.pool.AcquireContext(ctx, s.opts.AdmitWait)
	if err != nil {
		failure = err
		return nil, err
	}
	defer gen.pool.Release(sess)
	start := time.Now()
	before := sess.Stats()
	rows, err := runSession(sess, ctx, an)
	after := sess.Stats()
	elapsed := time.Since(start)
	if err != nil {
		failure = err
		return nil, err
	}
	res = &Result{Rows: rows, Info: sess.Info, Elapsed: elapsed, Prepared: hit,
		Cost: after.Sub(before), Epoch: gen.Epoch}
	if h := s.lat[proto]; h != nil {
		h.Observe(elapsed)
	}
	return res, nil
}

// runSession indirects Session.RunContext so tests can inject failures
// — and panics — into the execution stage without needing a query that
// triggers them organically.
var runSession = (*core.Session).RunContext

// Stats returns a snapshot of the aggregate serving statistics.
func (s *Server) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	st := s.stats
	st.Epoch = s.gen.Load().Epoch
	st.GenerationsLive = s.live.Load()
	st.WriteQueueDepth = s.writeQueueDepth()
	if s.wal != nil {
		ws := s.wal.Stats()
		st.WALRecords = ws.Records
		st.WALBytes = ws.Bytes
		st.WALFsyncs = ws.Fsyncs
		st.WALTruncations = ws.Truncations
	}
	st.WALReplayed = s.walReplayed
	st.WALSkipped = s.walSkipped
	s.subMu.Lock()
	st.PinnedQueries = int64(len(s.subs))
	s.subMu.Unlock()
	s.ckptMu.Lock()
	st.Checkpoints = s.ckptCount
	st.CheckpointEpoch = s.ckptLastEpoch
	st.CheckpointErrors = s.ckptErrors
	s.ckptMu.Unlock()
	if s.opts.Dist != nil {
		st.DistParts = int64(s.opts.Dist.Parts())
		st.DistDegraded = s.opts.Dist.Degraded()
	}
	return st
}

// ResetStats zeroes the aggregate serving statistics.
func (s *Server) ResetStats() {
	s.statsMu.Lock()
	s.stats = Stats{InFlight: s.stats.InFlight}
	s.statsMu.Unlock()
}

// writeQueueDepth reports how many writes are queued or applying right
// now. With admission control disabled it falls back to the coalescing
// queue's length (writes applying under the leader are then invisible,
// which is fine for a diagnostic gauge).
func (s *Server) writeQueueDepth() int64 {
	if s.writeSlots != nil {
		return int64(len(s.writeSlots))
	}
	s.queueMu.Lock()
	defer s.queueMu.Unlock()
	return int64(len(s.writeQ))
}

// Latency returns the per-protocol query latency histogram (ProtoHTTP
// or ProtoBinary) that /metrics exports, or nil for an unknown label.
func (s *Server) Latency(proto string) *Histogram { return s.lat[proto] }

// AdmitWait returns the admission-control bound, which the protocol
// layers turn into their Retry-After hints.
func (s *Server) AdmitWait() time.Duration { return s.opts.AdmitWait }

// PreparedLen returns the number of cached prepared statements.
func (s *Server) PreparedLen() int { return s.prepared.len() }

// Close releases the server's durability resources: it fsyncs and
// closes the attached WAL (releasing the dir's writer lock so a
// successor process can Open it) after waiting for an in-flight
// background checkpoint to settle. Queries and writes must have
// stopped first — Close is the tail of a graceful shutdown, not a way
// to fence live traffic. Idempotent; a memory-only server closes to a
// no-op.
func (s *Server) Close() error {
	// Let a mid-flight periodic checkpoint finish (or fail) before the
	// WAL goes away: closing under it would fail its TruncatePrefix and
	// count a spurious checkpoint error on every clean shutdown.
	for i := 0; i < 100; i++ {
		s.ckptMu.Lock()
		busy := s.ckptInflight
		s.ckptMu.Unlock()
		if !busy {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s.wal == nil {
		return nil
	}
	return s.wal.Close()
}

// preparedCache is a mutex-guarded LRU of analyzed statements keyed by
// SQL fingerprint.
type preparedCache struct {
	mu      sync.Mutex
	limit   int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type preparedEntry struct {
	fp  string
	sql string // the statement's text, for distributed dispatch
	an  *sql.Analysis
}

func (c *preparedCache) init(limit int) {
	c.limit = limit
	c.entries = make(map[string]*list.Element)
	c.order = list.New()
}

func (c *preparedCache) get(fp string) (*sql.Analysis, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[fp]
	if !ok {
		return nil, "", false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*preparedEntry)
	return e.an, e.sql, true
}

// put inserts an analysis unless the fingerprint is already cached, in
// which case the cached value wins (concurrent first preparations race
// to the lock; the loser adopts the winner's Analysis). Returns the
// authoritative Analysis either way.
func (c *preparedCache) put(fp, sqlText string, an *sql.Analysis) *sql.Analysis {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[fp]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*preparedEntry).an
	}
	for len(c.entries) >= c.limit {
		back := c.order.Back()
		if back == nil {
			break
		}
		c.order.Remove(back)
		delete(c.entries, back.Value.(*preparedEntry).fp)
	}
	c.entries[fp] = c.order.PushFront(&preparedEntry{fp: fp, sql: sqlText, an: an})
	return an
}

func (c *preparedCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
