// Package serve is the concurrent query-serving layer over the TAG-join
// executor. The TAG encoding is query-independent and read-mostly: one
// frozen tag.Graph can answer any number of simultaneous read queries.
// A Server wraps one graph with a pool of core.Sessions (each owning its
// private BSP engine and per-query caches), a prepared-statement cache
// keyed by the normalized SQL fingerprint, and aggregate serving
// statistics.
//
// The graph must not be mutated while a Server is in use: run
// InsertBatch/DeleteTuple maintenance only while no queries are in
// flight.
package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/tag"
)

// Options configures a Server.
type Options struct {
	// Sessions is the pool size — the maximum number of queries evaluated
	// simultaneously; further queries queue. Defaults to 4.
	Sessions int
	// Engine configures each session's BSP engine. Workers defaults to 1:
	// under concurrent serving, parallelism comes from running many
	// queries at once rather than many workers per superstep.
	Engine bsp.Options
	// PreparedLimit bounds the prepared-statement cache (entries);
	// defaults to 1024. The cache evicts wholesale when full (the
	// workloads are small, fixed query sets; LRU bookkeeping would cost
	// more than it saves).
	PreparedLimit int
}

func (o Options) withDefaults() Options {
	if o.Sessions <= 0 {
		o.Sessions = 4
	}
	if o.Engine.Workers == 0 {
		o.Engine.Workers = 1
	}
	if o.PreparedLimit <= 0 {
		o.PreparedLimit = 1024
	}
	return o
}

// Stats aggregates serving activity across all sessions of a Server.
type Stats struct {
	Queries        int64         // completed successfully
	Errors         int64         // failed (parse, analyze, or execution)
	InFlight       int64         // currently executing
	PreparedHits   int64         // served from the prepared-statement cache
	PreparedMisses int64         // analyzed afresh
	TotalTime      time.Duration // summed wall time of successful queries
	MaxTime        time.Duration // slowest successful query
	Cost           bsp.Stats     // summed BSP cost measures of all queries
}

// String renders the stats compactly.
func (s Stats) String() string {
	avg := time.Duration(0)
	if s.Queries > 0 {
		avg = s.TotalTime / time.Duration(s.Queries)
	}
	return fmt.Sprintf("queries=%d errors=%d inflight=%d prepared=%d/%d avg=%v max=%v [%s]",
		s.Queries, s.Errors, s.InFlight, s.PreparedHits, s.PreparedHits+s.PreparedMisses,
		avg.Round(time.Microsecond), s.MaxTime.Round(time.Microsecond), s.Cost)
}

// Result is one query's answer plus its per-query execution report.
type Result struct {
	Rows     *relation.Relation
	Info     core.ExecInfo
	Cost     bsp.Stats // this query's BSP cost only
	Elapsed  time.Duration
	Prepared bool // answered via a prepared-statement cache hit
}

// Server serves concurrent queries over one frozen TAG graph.
type Server struct {
	graph *tag.Graph
	pool  *Pool

	mu       sync.RWMutex // guards prepared
	prepared map[string]*sql.Analysis
	limit    int

	statsMu sync.Mutex
	stats   Stats
}

// New builds a Server over g. The graph must already be frozen (tag.Build
// leaves it frozen) and must not be mutated while the server is in use.
func New(g *tag.Graph, opts Options) *Server {
	opts = opts.withDefaults()
	if !g.G.Frozen() {
		g.G.Freeze()
	}
	return &Server{
		graph:    g,
		pool:     NewPool(g, opts.Engine, opts.Sessions),
		prepared: make(map[string]*sql.Analysis),
		limit:    opts.PreparedLimit,
	}
}

// Graph returns the served TAG graph.
func (s *Server) Graph() *tag.Graph { return s.graph }

// Prepare analyzes a query, consulting the fingerprint-keyed cache. It
// returns the shared Analysis (execution is read-only on it) and whether
// it was a cache hit.
func (s *Server) Prepare(query string) (*sql.Analysis, bool, error) {
	fp, err := sql.Fingerprint(query)
	if err != nil {
		return nil, false, err
	}
	s.mu.RLock()
	an, ok := s.prepared[fp]
	s.mu.RUnlock()
	if ok {
		return an, true, nil
	}
	an, err = sql.AnalyzeString(s.graph.Catalog, query)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	if cached, ok := s.prepared[fp]; ok {
		an = cached // another goroutine analyzed it first; share theirs
	} else {
		if len(s.prepared) >= s.limit {
			s.prepared = make(map[string]*sql.Analysis)
		}
		s.prepared[fp] = an
	}
	s.mu.Unlock()
	return an, false, nil
}

// Query evaluates a SQL string on a pooled session, blocking until a
// session is free. Safe for arbitrary concurrent use.
func (s *Server) Query(query string) (*Result, error) {
	an, hit, err := s.Prepare(query)
	s.statsMu.Lock()
	if err != nil {
		s.stats.Errors++
		s.stats.PreparedMisses++
		s.statsMu.Unlock()
		return nil, err
	}
	if hit {
		s.stats.PreparedHits++
	} else {
		s.stats.PreparedMisses++
	}
	s.stats.InFlight++
	s.statsMu.Unlock()

	sess := s.pool.Acquire()
	start := time.Now()
	before := sess.Stats()
	rows, err := sess.Run(an)
	after := sess.Stats()
	elapsed := time.Since(start)
	res := &Result{Rows: rows, Info: sess.Info, Elapsed: elapsed, Prepared: hit,
		Cost: after.Sub(before)}
	s.pool.Release(sess)

	s.statsMu.Lock()
	s.stats.InFlight--
	if err != nil {
		s.stats.Errors++
	} else {
		s.stats.Queries++
		s.stats.TotalTime += elapsed
		if elapsed > s.stats.MaxTime {
			s.stats.MaxTime = elapsed
		}
		s.stats.Cost.Add(res.Cost)
	}
	s.statsMu.Unlock()
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Stats returns a snapshot of the aggregate serving statistics.
func (s *Server) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// ResetStats zeroes the aggregate serving statistics.
func (s *Server) ResetStats() {
	s.statsMu.Lock()
	s.stats = Stats{InFlight: s.stats.InFlight}
	s.statsMu.Unlock()
}

// PreparedLen returns the number of cached prepared statements.
func (s *Server) PreparedLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.prepared)
}
