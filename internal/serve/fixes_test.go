package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/tag"
)

// TestPanickingQueryLeavesCleanStats is the regression test for the
// InFlight leak: a query that panics inside Run (net/http recovers
// handler panics, so in production the server lives on) must leave
// InFlight at 0, count an error, and release its generation pin and
// pool slot so the server keeps serving.
func TestPanickingQueryLeavesCleanStats(t *testing.T) {
	g, err := tag.Build(itemsCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(g, Options{Sessions: 2})

	orig := runSession
	runSession = func(sess *core.Session, ctx context.Context, an *sql.Analysis) (*relation.Relation, error) {
		panic("injected query panic")
	}
	defer func() { runSession = orig }()

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected query did not panic")
			}
		}()
		srv.Query("SELECT COUNT(*) FROM items")
	}()

	st := srv.Stats()
	if st.InFlight != 0 {
		t.Errorf("InFlight after panic = %d, want 0", st.InFlight)
	}
	if st.Errors != 1 || st.Queries != 0 {
		t.Errorf("errors/queries after panic = %d/%d, want 1/0", st.Errors, st.Queries)
	}
	if refs := srv.Generation().Refs(); refs != 1 {
		t.Errorf("generation refs after panic = %d, want 1 (the publisher's)", refs)
	}

	// The pool slot came back and the server still serves.
	runSession = orig
	res, err := srv.Query("SELECT COUNT(*) FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Len() != 1 {
		t.Fatalf("post-panic query returned %d rows", res.Rows.Len())
	}
	st = srv.Stats()
	if st.InFlight != 0 || st.Queries != 1 || st.Errors != 1 {
		t.Errorf("stats after recovery = inflight %d queries %d errors %d, want 0/1/1",
			st.InFlight, st.Queries, st.Errors)
	}
}

// TestCoalescedBatchNotTornByInsertFailure is the torn-op regression
// test: an op carrying both deletes and inserts whose insert fails
// *after* validation (injected through the insertBatch seam) must leave
// the shared clone untouched — its deletes must not leak into the
// generation the rest of the drain publishes.
func TestCoalescedBatchNotTornByInsertFailure(t *testing.T) {
	g, err := tag.Build(itemsCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(g, Options{Sessions: 2})
	maint := srv.Maintainer()

	// Seed a row whose vertex the failing op will try to delete.
	seed, err := maint.InsertBatch("items",
		[]relation.Tuple{{relation.Int(5000), relation.Str("g0"), relation.Int(1)}})
	if err != nil {
		t.Fatal(err)
	}
	victim := seed.Inserted[0]

	orig := insertBatch
	insertBatch = func(g *tag.Graph, table string, rows []relation.Tuple) ([]bsp.VertexID, error) {
		if len(rows) > 0 && rows[0][0] == relation.Int(666666) {
			return nil, fmt.Errorf("injected post-validation insert failure")
		}
		return orig(g, table, rows)
	}
	defer func() { insertBatch = orig }()

	// Coalesce a good op and the failing op into one drain.
	var (
		goodRes, badRes *WriteResult
		goodErr, badErr error
		wg              sync.WaitGroup
	)
	holdLeaderUntilQueued(t, srv, 2, func() {
		wg.Add(2)
		go func() {
			defer wg.Done()
			goodRes, goodErr = maint.InsertBatch("items",
				[]relation.Tuple{{relation.Int(5001), relation.Str("g1"), relation.Int(2)}})
		}()
		go func() {
			defer wg.Done()
			badRes, badErr = maint.Apply(WriteOp{
				Table:  "items",
				Insert: []relation.Tuple{{relation.Int(666666), relation.Str("g2"), relation.Int(3)}},
				Delete: []bsp.VertexID{victim},
			})
		}()
	})
	wg.Wait()

	if badErr == nil || !strings.Contains(badErr.Error(), "injected") {
		t.Fatalf("failing op returned %v (res %+v), want the injected error", badErr, badRes)
	}
	if goodErr != nil {
		t.Fatalf("good op failed alongside: %v", goodErr)
	}
	if goodRes.Epoch != 2 || goodRes.Coalesced != 1 {
		t.Errorf("good op epoch/coalesced = %d/%d, want 2/1", goodRes.Epoch, goodRes.Coalesced)
	}

	// 60 base + seed + good insert; the failing op's insert AND delete
	// both absent. Before the fix the delete had already mutated the
	// shared clone and was published with the drain (count 61).
	res, err := srv.Query("SELECT COUNT(*) FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows.Tuples[0][0].AsInt(); n != 62 {
		t.Errorf("COUNT(*) = %d, want 62 (failed op must not publish its deletes)", n)
	}
	res, err = srv.Query("SELECT COUNT(*) FROM items WHERE ikey = 5000")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows.Tuples[0][0].AsInt(); n != 1 {
		t.Errorf("victim row count = %d, want 1 (delete of the failed op leaked)", n)
	}

	// The victim vertex is still live: deleting it now must succeed.
	if _, err := maint.DeleteBatch([]bsp.VertexID{victim}); err != nil {
		t.Errorf("victim vertex unusable after failed op: %v", err)
	}
}

// TestHTTPMethodNotAllowed: unsupported methods get 405 with an Allow
// header instead of being silently treated as GET.
func TestHTTPMethodNotAllowed(t *testing.T) {
	g, err := tag.Build(itemsCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(g, Options{Sessions: 1})
	ts := httptest.NewServer(Handler(srv))
	defer ts.Close()

	cases := []struct {
		method, path, allow string
	}{
		{"DELETE", "/query?sql=SELECT%20COUNT(*)%20FROM%20items", "GET, POST"},
		{"PUT", "/query", "GET, POST"},
		{"POST", "/stats", "GET, HEAD"},
		{"DELETE", "/stats", "GET, HEAD"},
		{"POST", "/healthz", "GET, HEAD"},
		{"GET", "/write", "POST"},
		{"PUT", "/write", "POST"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", c.method, c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != c.allow {
			t.Errorf("%s %s: Allow = %q, want %q", c.method, c.path, got, c.allow)
		}
	}

	// A DELETE /query with valid SQL must not have executed the query —
	// the old handler fell through to the GET path and ran it.
	if st := srv.Stats(); st.Queries != 0 {
		t.Errorf("%d queries executed through rejected methods, want 0", st.Queries)
	}

	// The supported method sets still work, including HEAD probes.
	for _, probe := range []struct{ method, path string }{
		{"HEAD", "/healthz"}, {"HEAD", "/stats"}, {"GET", "/healthz"}, {"GET", "/stats"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s %s: status %d, want 200", probe.method, probe.path, resp.StatusCode)
		}
	}
}

// TestJSONLargeInts: INT cells a float64-backed JSON client would
// round are emitted as strings; everything in the exact range stays a
// number.
func TestJSONLargeInts(t *testing.T) {
	exact := int64(1) << 53
	cases := []struct {
		in   relation.Value
		want any
	}{
		{relation.Int(42), int64(42)},
		{relation.Int(-42), int64(-42)},
		{relation.Int(exact), exact},
		{relation.Int(-exact), -exact},
		{relation.Int(exact + 1), "9007199254740993"},
		{relation.Int(-exact - 1), "-9007199254740993"},
		{relation.Int(1 << 60), "1152921504606846976"},
	}
	for _, c := range cases {
		if got := JSONValue(c.in); got != c.want {
			t.Errorf("JSONValue(%v) = %v (%T), want %v (%T)", c.in, got, got, c.want, c.want)
		}
	}

	// The string form round-trips back through /write's row decoder.
	schema := relation.MustSchema(relation.Col("k", relation.KindInt))
	row, err := decodeRow(schema, []any{"9007199254740993"})
	if err != nil {
		t.Fatalf("decodeRow rejected the string form JSONValue emits: %v", err)
	}
	if row[0] != relation.Int(exact+1) {
		t.Errorf("round-tripped value = %v, want %d", row[0], exact+1)
	}
	if _, err := decodeRow(schema, []any{"not-a-number"}); err == nil {
		t.Error("decodeRow accepted a non-numeric string for an INT column")
	}
}
