package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// This file is the serving layer's observability surface: lock-free
// log-spaced latency histograms (one per protocol) and the Prometheus
// text exposition served on /metrics. No external client library is
// used — the text format is a stable, trivially-rendered contract, and
// the repo's only histogram consumer is a scrape endpoint plus the
// bench harness's quantile summaries.

// latBuckets are the histogram upper bounds in seconds, log-spaced
// 1-2.5-5 per decade from 100µs to 10s — wide enough for a point query
// on a warm session (tens of µs land in the first bucket) and a cold
// SF-scale join alike. Observations beyond the last bound land in the
// implicit +Inf bucket.
var latBuckets = [numLatBuckets]float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

const numLatBuckets = 16

// Histogram is a fixed-bucket latency histogram safe for concurrent
// Observe with no locks: one atomic counter per bucket plus an atomic
// sum. Bucket counts are non-cumulative internally; the Prometheus
// rendering accumulates them into the le-cumulative form the format
// requires.
type Histogram struct {
	counts [len(latBuckets) + 1]atomic.Int64 // last slot = +Inf
	sumNs  atomic.Int64
}

// NewHistogram returns an empty latency histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one query latency.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latBuckets) && s > latBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Quantile estimates the q-quantile (0 < q < 1) in seconds from the
// bucket counts: the returned value is the upper bound of the bucket
// the quantile falls in (the standard conservative histogram
// estimate), with linear interpolation inside the bucket. Returns 0
// with no observations; observations beyond the last bound report the
// last bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			seen += c
			continue
		}
		if float64(seen+c) >= rank {
			if i >= len(latBuckets) {
				return latBuckets[len(latBuckets)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = latBuckets[i-1]
			}
			frac := (rank - float64(seen)) / float64(c)
			return lo + (latBuckets[i]-lo)*frac
		}
		seen += c
	}
	return latBuckets[len(latBuckets)-1]
}

// WriteMetrics renders the server's serving statistics in the
// Prometheus text exposition format (version 0.0.4): counters mirrored
// from Stats, admission/queue gauges, and the per-protocol query
// latency histograms with precomputed p50/p99/p999 quantile gauges.
func (s *Server) WriteMetrics(w io.Writer) {
	st := s.Stats()

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("tagserve_queries_total", "Queries completed successfully.", st.Queries)
	counter("tagserve_query_errors_total", "Queries that failed (parse, analyze, or execution).", st.Errors)
	counter("tagserve_queries_canceled_total", "Queries aborted by deadline or client cancellation.", st.Canceled)
	counter("tagserve_admission_rejected_total", "Queries refused by admission control (session pool exhausted past the bounded wait).", st.Rejected)
	counter("tagserve_write_rejected_total", "Writes refused by admission control (write queue full past the bounded wait).", st.WriteRejected)
	counter("tagserve_prepared_hits_total", "Queries served from the prepared-statement cache.", st.PreparedHits)
	counter("tagserve_prepared_misses_total", "Queries analyzed afresh.", st.PreparedMisses)
	counter("tagserve_generation_swaps_total", "Graph generations published since startup.", st.Swaps)
	counter("tagserve_write_ops_total", "Write ops applied through the Maintainer.", st.WriteOps)
	counter("tagserve_rows_inserted_total", "Rows inserted through the Maintainer.", st.RowsInserted)
	counter("tagserve_rows_deleted_total", "Rows deleted through the Maintainer.", st.RowsDeleted)
	counter("tagserve_wal_records_total", "WAL records appended since boot.", st.WALRecords)
	counter("tagserve_wal_bytes_total", "WAL bytes appended since boot.", st.WALBytes)
	counter("tagserve_wal_fsyncs_total", "Fsyncs issued by the WAL sync policy.", st.WALFsyncs)
	counter("tagserve_checkpoints_total", "Checkpoints written since boot.", st.Checkpoints)
	counter("tagserve_incremental_hits_total", "Pinned-query epoch advances folded incrementally from the write delta.", st.IncrementalHits)
	counter("tagserve_incremental_fallbacks_total", "Pinned-query epoch advances that re-ran the query cold.", st.IncrementalFallbacks)
	counter("tagserve_incremental_mismatches_total", "Verified folds that diverged from the cold run (cold answer won).", st.IncrementalMismatches)
	counter("tagserve_bsp_messages_total", "BSP messages sent by all queries (the paper's M).", st.Cost.Messages)
	counter("tagserve_bsp_supersteps_total", "BSP supersteps run by all queries.", int64(st.Cost.Supersteps))

	gauge("tagserve_sessions_in_flight", "Queries currently executing.", st.InFlight)
	gauge("tagserve_write_queue_depth", "Writes queued or applying.", st.WriteQueueDepth)
	gauge("tagserve_generations_live", "Published but not yet drained graph generations.", st.GenerationsLive)
	gauge("tagserve_epoch", "Epoch of the currently served generation.", int64(st.Epoch))
	gauge("tagserve_prepared_statements", "Cached prepared statements.", int64(s.PreparedLen()))
	gauge("tagserve_pinned_queries", "Currently pinned (subscribed) queries.", st.PinnedQueries)

	// Per-protocol latency histograms, in the le-cumulative bucket form,
	// plus summary-style quantile gauges so p50/p99/p999 are readable
	// without a PromQL evaluator.
	const hname = "tagserve_query_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Query latency by serving protocol.\n# TYPE %s histogram\n", hname, hname)
	for _, proto := range []string{ProtoHTTP, ProtoBinary} {
		h := s.lat[proto]
		var cum int64
		for i, le := range latBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket{protocol=%q,le=%q} %d\n", hname, proto, trimFloat(le), cum)
		}
		cum += h.counts[len(latBuckets)].Load()
		fmt.Fprintf(w, "%s_bucket{protocol=%q,le=\"+Inf\"} %d\n", hname, proto, cum)
		fmt.Fprintf(w, "%s_sum{protocol=%q} %g\n", hname, proto, float64(h.sumNs.Load())/1e9)
		fmt.Fprintf(w, "%s_count{protocol=%q} %d\n", hname, proto, cum)
	}
	const qname = "tagserve_query_latency_seconds"
	fmt.Fprintf(w, "# HELP %s Query latency quantiles by serving protocol (histogram-estimated).\n# TYPE %s gauge\n", qname, qname)
	for _, proto := range []string{ProtoHTTP, ProtoBinary} {
		h := s.lat[proto]
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.5}, {"0.99", 0.99}, {"0.999", 0.999}} {
			fmt.Fprintf(w, "%s{protocol=%q,quantile=%q} %g\n", qname, proto, q.label, h.Quantile(q.q))
		}
	}
}

// trimFloat renders a bucket bound the way Prometheus clients expect
// (no exponent for these magnitudes, no trailing zeros).
func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }
