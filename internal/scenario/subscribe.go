package scenario

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
)

// Subscribe POSTs /subscribe and remembers the returned fingerprint
// under the statement's SQL, so later PinnedAnswer steps can address
// the pin across restarts (the fingerprint is derived from the SQL
// alone, so a boot-time -pin of the same statement answers to it).
type Subscribe struct {
	Server string
	SQL    string
	// WantIncremental requires the server to maintain the pin by delta
	// folding; a full-recompute answer fails the step.
	WantIncremental bool
}

func (s Subscribe) Describe() string { return "subscribe " + s.SQL }

func (s Subscribe) Run(c *Ctx) error {
	body, err := json.Marshal(map[string]string{"sql": s.SQL})
	if err != nil {
		return err
	}
	status, _, out, err := c.do(s.Server, http.MethodPost, "/subscribe", body)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("/subscribe: status %d: %s", status, out)
	}
	var resp struct {
		FP          string `json:"fp"`
		Incremental bool   `json:"incremental"`
		Reason      string `json:"reason"`
	}
	if err := json.Unmarshal(out, &resp); err != nil {
		return fmt.Errorf("/subscribe response: %w", err)
	}
	if resp.FP == "" {
		return fmt.Errorf("/subscribe answered without a fingerprint: %s", out)
	}
	if s.WantIncremental && !resp.Incremental {
		return fmt.Errorf("pin is not maintained incrementally (%s)", resp.Reason)
	}
	st := c.state(s.Server)
	st.mu.Lock()
	if st.subs == nil {
		st.subs = map[string]string{}
	}
	st.subs[s.SQL] = resp.FP
	st.mu.Unlock()
	return nil
}

// PinnedAnswer reads a pinned query's maintained answer (GET
// /subscribe?fp=...) and asserts on it. MatchCold is the correctness
// teeth: the maintained rows must equal, as a multiset, a cold /query
// run of the same SQL — the incremental fold may never drift from what
// a full BSP re-run computes.
type PinnedAnswer struct {
	Server     string
	SQL        string // names a pin recorded by an earlier Subscribe step
	WantCell   string // exact first-cell value, when non-empty
	MatchCold  bool   // rows must equal a cold /query of the same SQL
	EpochAcked bool   // the answer's epoch must be >= the acked epoch
}

func (s PinnedAnswer) Describe() string { return "pinned answer " + s.SQL }

func (s PinnedAnswer) Run(c *Ctx) error {
	st := c.state(s.Server)
	st.mu.Lock()
	fp, ok := st.subs[s.SQL]
	st.mu.Unlock()
	if !ok {
		return fmt.Errorf("no Subscribe step recorded a pin for %q", s.SQL)
	}
	status, _, out, err := c.do(s.Server, http.MethodGet, "/subscribe?fp="+url.QueryEscape(fp), nil)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("GET /subscribe: status %d: %s", status, out)
	}
	var resp struct {
		Epoch uint64  `json:"epoch"`
		Rows  [][]any `json:"rows"`
	}
	if err := json.Unmarshal(out, &resp); err != nil {
		return fmt.Errorf("GET /subscribe response: %w", err)
	}
	if s.WantCell != "" {
		if len(resp.Rows) == 0 || len(resp.Rows[0]) == 0 {
			return fmt.Errorf("no rows, want cell %q", s.WantCell)
		}
		if cell := cellString(resp.Rows[0][0]); cell != s.WantCell {
			return fmt.Errorf("pinned cell %q, want %q", cell, s.WantCell)
		}
	}
	if s.EpochAcked {
		acked, _ := st.snapshot()
		if resp.Epoch < acked {
			return fmt.Errorf("pinned answer at epoch %d, below acked epoch %d", resp.Epoch, acked)
		}
	}
	if s.MatchCold {
		qStatus, _, qOut, err := c.do(s.Server, http.MethodGet, "/query?sql="+url.QueryEscape(s.SQL), nil)
		if err != nil {
			return err
		}
		if qStatus != http.StatusOK {
			return fmt.Errorf("cold /query: status %d: %s", qStatus, qOut)
		}
		var cold struct {
			Rows [][]any `json:"rows"`
		}
		if err := json.Unmarshal(qOut, &cold); err != nil {
			return fmt.Errorf("cold /query response: %w", err)
		}
		if got, want := canonRows(resp.Rows), canonRows(cold.Rows); got != want {
			return fmt.Errorf("pinned answer diverged from cold run:\npinned: %s\ncold:   %s", got, want)
		}
	}
	return nil
}

// canonRows renders a row set order-independently: both the pinned
// answer and a cold run are multisets (the dialect has no ORDER BY).
func canonRows(rows [][]any) string {
	lines := make([]string, len(rows))
	for i, row := range rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = cellString(v)
		}
		lines[i] = strings.Join(cells, "|")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Unsubscribe DELETEs a pin recorded by an earlier Subscribe step.
type Unsubscribe struct {
	Server string
	SQL    string
}

func (s Unsubscribe) Describe() string { return "unsubscribe " + s.SQL }

func (s Unsubscribe) Run(c *Ctx) error {
	st := c.state(s.Server)
	st.mu.Lock()
	fp, ok := st.subs[s.SQL]
	st.mu.Unlock()
	if !ok {
		return fmt.Errorf("no Subscribe step recorded a pin for %q", s.SQL)
	}
	status, _, out, err := c.do(s.Server, http.MethodDelete, "/subscribe?fp="+url.QueryEscape(fp), nil)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("DELETE /subscribe: status %d: %s", status, out)
	}
	return nil
}
