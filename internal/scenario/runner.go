package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Runner executes scenarios, each in an isolated scratch directory
// against its own tagserve processes.
type Runner struct {
	// Binary is the tagserve executable to drive. Empty builds
	// repro/cmd/tagserve once into the scratch root with the go tool.
	Binary string
	// BaseDir is the scratch root; empty uses a fresh temp dir.
	BaseDir string
	// Keep leaves scenario directories (WALs, checkpoints, logs) on disk
	// for postmortems instead of removing them on success.
	Keep bool
	// Verbose logs every step as it runs.
	Verbose bool
	// Out receives progress and the report; nil discards.
	Out io.Writer
}

// Result is one scenario's outcome.
type Result struct {
	Name    string
	Tier    Tier
	Err     error
	Step    string // failing step's description, when Err != nil
	Elapsed time.Duration
}

// Ctx is the mutable state a scenario's steps share: the scratch dir,
// the server processes by name, and per-server write ledgers that turn
// "replay must reach the exact pre-crash epoch" into a declarative
// assertion.
type Ctx struct {
	Dir    string
	Binary string
	Client *http.Client
	Logf   func(format string, args ...any)

	procs     map[string]*proc
	lastFlags map[string][]string
	states    map[string]*serverState
	loads     map[string]*loadRun
}

// serverState is the harness-side ledger for one named server: what
// the harness knows was acknowledged, against which restart scenarios
// assert.
type serverState struct {
	mu     sync.Mutex
	acked  uint64            // highest write epoch the server acknowledged
	ledger int64             // marker rows inserted minus deleted (acked only)
	last   []int64           // tuple-vertex ids of the last successful Write step
	subs   map[string]string // SQL -> subscription fingerprint from Subscribe steps
}

func (st *serverState) ack(epoch uint64, ledgerDelta int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if epoch > st.acked {
		st.acked = epoch
	}
	st.ledger += ledgerDelta
}

func (st *serverState) snapshot() (acked uint64, ledger int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.acked, st.ledger
}

// defaultServer names the implicit single server of most scenarios.
const defaultServer = "main"

func orMain(name string) string {
	if name == "" {
		return defaultServer
	}
	return name
}

// expand substitutes the scenario's scratch directory for {dir} — the
// one path scenarios must share across restarts without knowing it —
// and, for each running server, {dist:<name>} with the cluster address
// that server announced, so a worker row can dial a coordinator bound
// to an ephemeral port. The dist substitution waits briefly: the
// coordinator prints its dist:// line after the data load, and the
// stdout scanner may still be catching up when the next step runs.
func (c *Ctx) expand(s string) string {
	s = strings.ReplaceAll(s, "{dir}", c.Dir)
	for name, p := range c.procs {
		tok := "{dist:" + name + "}"
		if !strings.Contains(s, tok) {
			continue
		}
		addr := p.dist()
		for wait := 0; addr == "" && wait < 100 && p.alive(); wait++ {
			time.Sleep(50 * time.Millisecond)
			addr = p.dist()
		}
		s = strings.ReplaceAll(s, tok, addr)
	}
	return s
}

func (c *Ctx) expandAll(in []string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = c.expand(s)
	}
	return out
}

// proc returns the named server, which must have been started.
func (c *Ctx) proc(name string) (*proc, error) {
	p, ok := c.procs[orMain(name)]
	if !ok {
		return nil, fmt.Errorf("no server %q started", orMain(name))
	}
	return p, nil
}

// state returns (creating on demand) the named server's ledger.
func (c *Ctx) state(name string) *serverState {
	name = orMain(name)
	st, ok := c.states[name]
	if !ok {
		st = &serverState{}
		c.states[name] = st
	}
	return st
}

// do issues one HTTP request to a named server and returns the status,
// response headers (steps assert on Retry-After), and body.
func (c *Ctx) do(server, method, path string, body []byte) (int, http.Header, []byte, error) {
	p, err := c.proc(server)
	if err != nil {
		return 0, nil, nil, err
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, p.addr+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.Client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return resp.StatusCode, resp.Header, nil, err
	}
	return resp.StatusCode, resp.Header, out, nil
}

// stats fetches /stats as a name → number map, so assertion steps can
// address any counter by its JSON name without a schema dependency.
func (c *Ctx) stats(server string) (map[string]float64, error) {
	status, _, body, err := c.do(server, http.MethodGet, "/stats", nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("/stats: status %d: %s", status, body)
	}
	var raw map[string]any
	if err := json.Unmarshal(body, &raw); err != nil {
		return nil, fmt.Errorf("/stats: %w", err)
	}
	out := make(map[string]float64, len(raw))
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out, nil
}

// statField looks a counter up by JSON name, erroring on a typo rather
// than silently asserting against zero.
func (c *Ctx) statField(server, field string) (float64, error) {
	st, err := c.stats(server)
	if err != nil {
		return 0, err
	}
	v, ok := st[field]
	if !ok {
		return 0, fmt.Errorf("/stats has no numeric field %q", field)
	}
	return v, nil
}

// cleanup terminates everything a scenario left running.
func (c *Ctx) cleanup() {
	for _, lr := range c.loads {
		lr.stop()
	}
	for _, lr := range c.loads {
		<-lr.done
	}
	for _, p := range c.procs {
		if p.alive() {
			p.kill()
			<-p.done
		}
	}
}

// EnsureBinary returns a tagserve binary path, building
// repro/cmd/tagserve into dir with the go tool when bin is empty.
func EnsureBinary(bin, dir string) (string, error) {
	if bin != "" {
		if _, err := os.Stat(bin); err != nil {
			return "", fmt.Errorf("scenario: tagserve binary: %w", err)
		}
		return bin, nil
	}
	out := filepath.Join(dir, "tagserve")
	cmd := exec.Command("go", "build", "-o", out, "repro/cmd/tagserve")
	if msg, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("scenario: building tagserve: %v\n%s", err, msg)
	}
	return out, nil
}

// RunAll executes rows in order and renders a report to r.Out. The
// returned results are in row order; the error only reports harness
// failures (scenario failures live in the results).
func (r *Runner) RunAll(rows []Scenario) ([]Result, error) {
	out := r.Out
	if out == nil {
		out = io.Discard
	}
	base := r.BaseDir
	if base == "" {
		var err error
		base, err = os.MkdirTemp("", "tagscenario-")
		if err != nil {
			return nil, err
		}
		if !r.Keep {
			defer os.RemoveAll(base)
		}
	}
	bin, err := EnsureBinary(r.Binary, base)
	if err != nil {
		return nil, err
	}

	results := make([]Result, 0, len(rows))
	failed := 0
	for _, s := range rows {
		res := r.runOne(s, bin, base)
		results = append(results, res)
		status := "ok"
		if res.Err != nil {
			failed++
			status = "FAIL"
		}
		fmt.Fprintf(out, "%-34s %-5s %7.2fs  %s\n", s.Name, status, res.Elapsed.Seconds(), s.Doc)
		if res.Err != nil {
			fmt.Fprintf(out, "    step %s\n    %v\n", res.Step, res.Err)
		}
	}
	fmt.Fprintf(out, "scenarios: %d ran, %d failed\n", len(results), failed)
	if r.Keep {
		fmt.Fprintf(out, "scratch dirs kept under %s\n", base)
	}
	return results, nil
}

// runOne executes a single scenario in its own directory.
func (r *Runner) runOne(s Scenario, bin, base string) Result {
	start := time.Now()
	dir := filepath.Join(base, s.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Result{Name: s.Name, Tier: s.Tier, Err: err, Elapsed: time.Since(start)}
	}
	out := r.Out
	if out == nil {
		out = io.Discard
	}
	c := &Ctx{
		Dir:       dir,
		Binary:    bin,
		Client:    &http.Client{Timeout: 60 * time.Second},
		procs:     map[string]*proc{},
		lastFlags: map[string][]string{},
		states:    map[string]*serverState{},
		loads:     map[string]*loadRun{},
	}
	c.Logf = func(format string, args ...any) {
		if r.Verbose {
			fmt.Fprintf(out, "  ["+s.Name+"] "+format+"\n", args...)
		}
	}
	defer c.cleanup()

	for i, step := range s.Steps {
		c.Logf("step %d/%d: %s", i+1, len(s.Steps), step.Describe())
		if err := step.Run(c); err != nil {
			return Result{Name: s.Name, Tier: s.Tier, Err: err,
				Step:    fmt.Sprintf("%d/%d %s", i+1, len(s.Steps), step.Describe()),
				Elapsed: time.Since(start)}
		}
	}
	if !r.Keep {
		c.cleanup() // release flocks before removing the tree
		os.RemoveAll(dir)
	}
	return Result{Name: s.Name, Tier: s.Tier, Elapsed: time.Since(start)}
}
