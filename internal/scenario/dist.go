package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"syscall"
	"time"

	"repro/internal/codec"
)

// ---- distributed-topology steps -----------------------------------------

// KillWorkerUnderQuery hammers the coordinator's /query endpoint from a
// background loop while SIGKILLing one worker mid-stream. The contract:
// every in-flight and subsequent query gets an HTTP answer — rows
// before the kill, a typed JSON error once the topology degrades —
// never a hang, never a coordinator crash. At least one typed error
// must be observed, the proof the kill landed while queries were in
// flight rather than in a quiet gap.
type KillWorkerUnderQuery struct {
	Server string // coordinator; defaults to "main"
	Victim string // worker to SIGKILL
	SQL    string // query to stream
}

func (s KillWorkerUnderQuery) Describe() string {
	return fmt.Sprintf("kill -9 %s under query load on %s", s.Victim, orMain(s.Server))
}

func (s KillWorkerUnderQuery) Run(c *Ctx) error {
	coord, err := c.proc(s.Server)
	if err != nil {
		return err
	}
	victim, err := c.proc(s.Victim)
	if err != nil {
		return err
	}

	path := "/query?sql=" + url.QueryEscape(s.SQL)
	var (
		mu      sync.Mutex
		oks     int
		typed   int
		hardErr error
	)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			status, _, out, err := c.do(s.Server, http.MethodGet, path, nil)
			mu.Lock()
			switch {
			case err != nil:
				// A transport-level failure means a hung or crashed
				// coordinator — the one forbidden outcome.
				hardErr = fmt.Errorf("query transport error under worker kill: %w", err)
			case status == http.StatusOK:
				oks++
			default:
				var e struct {
					Error string `json:"error"`
				}
				if json.Unmarshal(out, &e) != nil || e.Error == "" {
					hardErr = fmt.Errorf("status %d without a JSON error body: %s", status, out)
				} else {
					typed++
				}
			}
			stopNow := hardErr != nil
			mu.Unlock()
			if stopNow {
				return
			}
		}
	}()

	// Let the stream establish, then kill the worker under it.
	time.Sleep(150 * time.Millisecond)
	if err := victim.signal(syscall.SIGKILL, 10*time.Second); err != nil {
		close(stop)
		<-done
		return err
	}
	time.Sleep(400 * time.Millisecond)
	close(stop)
	<-done

	mu.Lock()
	defer mu.Unlock()
	if hardErr != nil {
		return hardErr
	}
	if oks == 0 {
		return fmt.Errorf("no query succeeded before the kill")
	}
	if typed == 0 {
		return fmt.Errorf("no typed error observed after killing %s (%d answers, all 200s)", s.Victim, oks)
	}
	if !coord.alive() {
		return fmt.Errorf("coordinator died with the worker (stderr %q)", coord.stderr.String())
	}
	c.Logf("%d answers, %d typed errors after the kill", oks, typed)
	return nil
}

// DistFuzz throws hostile byte sequences at the coordinator's cluster
// port — raw garbage, an HTTP request, a JOIN with the wrong magic, an
// absurd length prefix, frames truncated mid-header and mid-payload, a
// well-formed frame of unknown kind. Each lands on its own connection
// against a formed topology. The contract: the coordinator refuses or
// ignores every one without wedging the barrier — the honest query
// probe run between cases must keep answering — and never crashes.
type DistFuzz struct {
	Server   string // coordinator; defaults to "main"
	SQL      string // honest probe between hostile cases
	WantCell string // expected first cell of the probe
}

func (s DistFuzz) Describe() string { return "dist fuzz barrage on " + orMain(s.Server) }

func (s DistFuzz) Run(c *Ctx) error {
	p, err := c.proc(s.Server)
	if err != nil {
		return err
	}
	addr := p.dist()
	if addr == "" {
		return fmt.Errorf("%s: no dist:// address announced (started without -workers?)", p.name)
	}

	// The kind byte (0x01=JOIN) and magic mirror the wire constants in
	// internal/dist. Drift would only soften the fuzz — the honest
	// probe below catches a genuinely broken wire.
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		if err := codec.WriteFrame(&buf, payload); err != nil {
			panic(err) // bytes.Buffer writes cannot fail
		}
		return buf.Bytes()
	}
	badMagicJoin := frame(append(append([]byte{0x01},
		codec.AppendString(nil, "notdist9")...),
		codec.AppendString(nil, "127.0.0.1:1")...))
	goodJoin := frame(append(append([]byte{0x01},
		codec.AppendString(nil, "tagdist1")...),
		codec.AppendString(nil, "127.0.0.1:1")...))

	cases := []struct {
		name    string
		payload []byte
	}{
		{"raw-garbage", []byte("\x00\xffnot a frame at all\x13\x37")},
		{"http-speaker", []byte("GET /query HTTP/1.1\r\nHost: fuzz\r\n\r\n")},
		{"bad-magic-join", badMagicJoin},
		{"unknown-kind", frame([]byte{0x7F, 0xEE, 0xEE})},
		{"oversized-length", []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xDE, 0xAD, 0xBE, 0xEF}},
		{"half-header", []byte{0x00, 0x00, 0x00}},
		{"truncated-join", goodJoin[:len(goodJoin)-4]},
		// A well-formed JOIN against a formed topology: the cluster is
		// full, so the contract is an explicit refusal, not an accept.
		{"late-join", goodJoin},
	}
	for _, tc := range cases {
		if err := throwHostile(addr, tc.payload); err != nil {
			return fmt.Errorf("%s: %w", tc.name, err)
		}
		if !p.alive() {
			return fmt.Errorf("%s: coordinator died on hostile frame %s (stderr %q)",
				p.name, tc.name, p.stderr.String())
		}
		// The barrier must not be wedged: a real query still answers.
		if s.SQL != "" {
			if err := (Query{Server: s.Server, SQL: s.SQL, WantCell: s.WantCell}).Run(c); err != nil {
				return fmt.Errorf("after %s: %w", tc.name, err)
			}
		}
	}
	return nil
}
