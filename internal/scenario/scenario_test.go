package scenario

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// newTestCtx builds a Ctx the way the runner does, against a stub
// binary instead of a real tagserve.
func newTestCtx(t *testing.T, binary string) *Ctx {
	t.Helper()
	c := &Ctx{
		Dir:       t.TempDir(),
		Binary:    binary,
		Client:    &http.Client{Timeout: 10 * time.Second},
		Logf:      func(format string, args ...any) { t.Logf(format, args...) },
		procs:     map[string]*proc{},
		lastFlags: map[string][]string{},
		states:    map[string]*serverState{},
		loads:     map[string]*loadRun{},
	}
	t.Cleanup(c.cleanup)
	return c
}

// stubServer writes a shell script that speaks the tagserve harness
// protocol — records its argv to <script>.args, prints the listening
// line pointing at the given health endpoint's port (its first
// argument), exits 0 on SIGTERM — and a backing HTTP server that
// answers /healthz. It returns the script path and the port flag.
func stubServer(t *testing.T) (script, port string) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(ts.Close)
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	script = filepath.Join(t.TempDir(), "stub-tagserve")
	body := `#!/bin/sh
echo "$@" > "$0.args"
trap 'exit 0' TERM
echo "listening http://127.0.0.1:$1"
while :; do sleep 0.1; done
`
	if err := os.WriteFile(script, []byte(body), 0o755); err != nil {
		t.Fatal(err)
	}
	return script, u.Port()
}

func stubArgs(t *testing.T, script string) string {
	t.Helper()
	out, err := os.ReadFile(script + ".args")
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(string(out))
}

// TestKillDeliversSIGKILL drives the real Start/Kill steps against the
// stub and checks the process genuinely died by SIGKILL — the property
// every crash scenario's validity rests on.
func TestKillDeliversSIGKILL(t *testing.T) {
	script, port := stubServer(t)
	c := newTestCtx(t, script)

	if err := (Start{Flags: []string{port}}).Run(c); err != nil {
		t.Fatal(err)
	}
	if err := (Kill{}).Run(c); err != nil {
		t.Fatal(err)
	}
	p := c.procs["main"]
	if _, sig, bySignal := p.exitState(); !bySignal || sig != syscall.SIGKILL {
		t.Fatalf("exit state = %v, want death by SIGKILL", p.cmd.ProcessState)
	}
}

// TestStopRequiresCleanExit: SIGTERM against the trapping stub is a
// clean stop; the Stop step accepts exactly that.
func TestStopRequiresCleanExit(t *testing.T) {
	script, port := stubServer(t)
	c := newTestCtx(t, script)

	if err := (Start{Flags: []string{port}}).Run(c); err != nil {
		t.Fatal(err)
	}
	if err := (Stop{}).Run(c); err != nil {
		t.Fatal(err)
	}
	if code, _, bySignal := c.procs["main"].exitState(); bySignal || code != 0 {
		t.Fatalf("exit state = %v, want exit 0", c.procs["main"].cmd.ProcessState)
	}
}

// TestRestartPreservesFlags kills the stub and restarts it with an
// Extra flag: the relaunched argv must be the original flags plus the
// extra, in order — what makes "same WAL dir, same base" restarts hold.
func TestRestartPreservesFlags(t *testing.T) {
	script, port := stubServer(t)
	c := newTestCtx(t, script)

	flags := []string{port, "-db", "tpch", "-wal", "{dir}/wal"}
	if err := (Start{Flags: flags}).Run(c); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%s -db tpch -wal %s/wal", port, c.Dir)
	if got := stubArgs(t, script); got != want {
		t.Fatalf("start argv = %q, want %q", got, want)
	}
	if err := (Kill{}).Run(c); err != nil {
		t.Fatal(err)
	}
	if err := (Restart{Extra: []string{"-extra"}}).Run(c); err != nil {
		t.Fatal(err)
	}
	if got := stubArgs(t, script); got != want+" -extra" {
		t.Fatalf("restart argv = %q, want %q", got, want+" -extra")
	}
}

// TestStartRequiresListeningLine: a binary that never prints the
// protocol line is a startup failure, not a hang.
func TestStartRequiresListeningLine(t *testing.T) {
	script := filepath.Join(t.TempDir(), "mute")
	if err := os.WriteFile(script, []byte("#!/bin/sh\necho hello world\nexit 3\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	c := newTestCtx(t, script)
	err := (Start{Flags: nil}).Run(c)
	if err == nil || !strings.Contains(err.Error(), "listening") {
		t.Fatalf("err = %v, want a listening-line protocol error", err)
	}
}

// TestExpectStartFailWantsSelfExit: the refusal step accepts a clean
// nonzero exit with matching stderr and rejects exit 0.
func TestExpectStartFailWantsSelfExit(t *testing.T) {
	script := filepath.Join(t.TempDir(), "refuser")
	body := "#!/bin/sh\necho 'wal: dir already has a live writer' >&2\nexit 1\n"
	if err := os.WriteFile(script, []byte(body), 0o755); err != nil {
		t.Fatal(err)
	}
	c := newTestCtx(t, script)
	if err := (ExpectStartFail{WantStderr: "live writer"}).Run(c); err != nil {
		t.Fatal(err)
	}
	if err := (ExpectStartFail{WantStderr: "some other refusal"}).Run(c); err == nil {
		t.Fatal("mismatched stderr accepted")
	}

	ok := filepath.Join(t.TempDir(), "succeeder")
	if err := os.WriteFile(ok, []byte("#!/bin/sh\nexit 0\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	c2 := newTestCtx(t, ok)
	if err := (ExpectStartFail{}).Run(c2); err == nil {
		t.Fatal("exit 0 accepted as a startup refusal")
	}
}

// TestCorruptFileHitsDeclaredOffset verifies the damage step flips
// exactly the byte it names — positive and negative offsets — and
// leaves every other byte alone.
func TestCorruptFileHitsDeclaredOffset(t *testing.T) {
	c := newTestCtx(t, "/bin/false")
	orig := []byte{0, 1, 2, 3, 4, 5, 6, 7}
	path := filepath.Join(c.Dir, "victim.bin")
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := (CorruptFile{Glob: "victim.bin", Offset: 2, XOR: 0x0F}).Run(c); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	want := append([]byte(nil), orig...)
	want[2] ^= 0x0F
	if string(got) != string(want) {
		t.Fatalf("after offset 2: % x, want % x", got, want)
	}

	// Negative offset counts from the end; default mask is 0xFF.
	if err := (CorruptFile{Glob: "victim.bin", Offset: -1}).Run(c); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	want[len(want)-1] ^= 0xFF
	if string(got) != string(want) {
		t.Fatalf("after offset -1: % x, want % x", got, want)
	}

	// Out-of-range offsets are declared mistakes, not silent no-ops.
	if err := (CorruptFile{Glob: "victim.bin", Offset: int64(len(orig))}).Run(c); err == nil {
		t.Fatal("offset past EOF accepted")
	}
	if err := (CorruptFile{Glob: "victim.bin", Offset: -int64(len(orig)) - 1}).Run(c); err == nil {
		t.Fatal("negative offset before start accepted")
	}
}

// TestTruncateFileTrimsExactly checks the torn-tail primitive.
func TestTruncateFileTrimsExactly(t *testing.T) {
	c := newTestCtx(t, "/bin/false")
	path := filepath.Join(c.Dir, "log.bin")
	if err := os.WriteFile(path, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := (TruncateFile{Glob: "log.bin", Trim: 3}).Run(c); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 97 {
		t.Fatalf("size = %d, want 97", fi.Size())
	}
	if err := (TruncateFile{Glob: "log.bin", Trim: 98}).Run(c); err == nil {
		t.Fatal("trim past start accepted")
	}
	if err := (TruncateFile{Glob: "log.bin", Trim: 0}).Run(c); err == nil {
		t.Fatal("zero trim accepted")
	}
}

// TestResolveOneIsExact: damage globs must name exactly one file — a
// glob silently picking one of several would damage the wrong artifact.
func TestResolveOneIsExact(t *testing.T) {
	c := newTestCtx(t, "/bin/false")
	for _, name := range []string{"a.ckpt", "b.ckpt"} {
		if err := os.WriteFile(filepath.Join(c.Dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := resolveOne(c, "*.ckpt"); err == nil {
		t.Fatal("ambiguous glob accepted")
	}
	if _, err := resolveOne(c, "missing-*"); err == nil {
		t.Fatal("empty glob accepted")
	}
	if got, err := resolveOne(c, "a.*"); err != nil || filepath.Base(got) != "a.ckpt" {
		t.Fatalf("resolveOne = %q, %v", got, err)
	}
}

// TestNormalizeHost covers the ephemeral-bind address rewrites.
func TestNormalizeHost(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:8080": "127.0.0.1:8080",
		"0.0.0.0:8080":   "127.0.0.1:8080",
		"[::]:8080":      "127.0.0.1:8080",
		":8080":          "127.0.0.1:8080",
		"not-an-addr":    "not-an-addr",
	}
	for in, want := range cases {
		if got := normalizeHost(in); got != want {
			t.Errorf("normalizeHost(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSelectFiltersTierAndName pins the matrix contract the CI smoke
// step relies on: a quick tier of at least 10 rows, name regexps, and
// rejection of bad patterns.
func TestSelectFiltersTierAndName(t *testing.T) {
	all := Matrix()
	quick, err := Select(all, Quick, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(quick) < 10 {
		t.Fatalf("quick tier has %d scenarios, want >= 10", len(quick))
	}
	full, err := Select(all, Full, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= len(quick) {
		t.Fatalf("full tier (%d) should strictly contain quick (%d)", len(full), len(quick))
	}
	named, err := Select(all, Full, "^kill9")
	if err != nil {
		t.Fatal(err)
	}
	if len(named) == 0 {
		t.Fatal("name filter matched nothing")
	}
	for _, s := range named {
		if !strings.HasPrefix(s.Name, "kill9") {
			t.Errorf("filter leaked %q", s.Name)
		}
	}
	if _, err := Select(all, Quick, "("); err == nil {
		t.Fatal("bad regexp accepted")
	}

	seen := map[string]bool{}
	for _, s := range all {
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Doc == "" || len(s.Steps) == 0 {
			t.Errorf("scenario %q is missing doc or steps", s.Name)
		}
	}
}
