package scenario

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"
)

// startTimeout bounds how long a server may take to print its
// "listening" line and pass /healthz (data generation and graph
// encoding happen in between, plus WAL replay on restarts).
const startTimeout = 120 * time.Second

// proc is one live (or exited) server process under harness control.
type proc struct {
	name   string
	flags  []string // argv it was started with, for Restart
	cmd    *exec.Cmd
	addr   string // base URL, e.g. http://127.0.0.1:43231
	stdout *tailBuffer
	stderr *tailBuffer

	protoMu   sync.Mutex
	protoAddr string // binary-protocol host:port, when announced
	distAddr  string // cluster (coordinator) host:port, when announced

	done    chan struct{} // closed once Wait has returned
	waitErr error         // cmd.Wait's result, valid after done
}

// tailBuffer keeps the most recent limit bytes written to it — enough
// context for a failure report without buffering a load test's output.
type tailBuffer struct {
	mu    sync.Mutex
	limit int
	buf   []byte
}

func newTail(limit int) *tailBuffer { return &tailBuffer{limit: limit} }

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > t.limit {
		t.buf = append(t.buf[:0], t.buf[len(t.buf)-t.limit:]...)
	}
	return len(p), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}

// listeningPrefix is the contract with tagserve: its first stdout line
// is "listening http://<addr>", the harness's only way to learn an
// ephemeral (-addr :0) port. With -proto-addr a "listening proto://"
// line follows; both print before the data load, so the proto address
// is known well before the server passes /healthz.
const (
	listeningPrefix = "listening http://"
	protoPrefix     = "listening proto://"
	distPrefix      = "listening dist://"
)

// spawn launches binary with flags, wiring stdout through the
// listening-line scanner and both streams into tail buffers. The
// returned channel yields the bound address if the first stdout line
// follows the protocol, and closes either way.
func spawn(name, binary string, flags []string) (*proc, <-chan string, error) {
	cmd := exec.Command(binary, flags...)
	p := &proc{
		name:   name,
		flags:  append([]string(nil), flags...),
		cmd:    cmd,
		stdout: newTail(8 << 10),
		stderr: newTail(8 << 10),
		done:   make(chan struct{}),
	}
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, err
	}
	cmd.Stderr = p.stderr
	if err := cmd.Start(); err != nil {
		return nil, nil, fmt.Errorf("starting %s: %w", binary, err)
	}

	addrCh := make(chan string, 1)
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		sc := bufio.NewScanner(outPipe)
		sc.Buffer(make([]byte, 64<<10), 64<<10)
		first := true
		for sc.Scan() {
			line := sc.Text()
			p.stdout.Write([]byte(line + "\n"))
			if strings.HasPrefix(line, protoPrefix) {
				p.protoMu.Lock()
				p.protoAddr = normalizeHost(strings.TrimSpace(strings.TrimPrefix(line, protoPrefix)))
				p.protoMu.Unlock()
			}
			if strings.HasPrefix(line, distPrefix) {
				p.protoMu.Lock()
				p.distAddr = normalizeHost(strings.TrimSpace(strings.TrimPrefix(line, distPrefix)))
				p.protoMu.Unlock()
			}
			if first {
				first = false
				if strings.HasPrefix(line, listeningPrefix) {
					addrCh <- strings.TrimSpace(strings.TrimPrefix(line, listeningPrefix))
				}
				close(addrCh)
			}
		}
		if first {
			close(addrCh) // exited before printing anything
		}
		io.Copy(io.Discard, outPipe)
	}()
	go func() {
		readers.Wait()
		p.waitErr = cmd.Wait()
		close(p.done)
	}()
	return p, addrCh, nil
}

// startProcess launches binary with flags and blocks until the process
// announces its bound address on stdout. Readiness (healthz) is the
// caller's concern.
func startProcess(name, binary string, flags []string) (*proc, error) {
	p, addrCh, err := spawn(name, binary, flags)
	if err != nil {
		return nil, err
	}
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			// The process spoke, but not the protocol. Give it a moment to
			// exit on its own (a flag error, say) before killing it, so the
			// exit state reflects the process, not the harness.
			select {
			case <-p.done:
			case <-time.After(2 * time.Second):
				p.kill()
				<-p.done
			}
			return p, fmt.Errorf("%s: no %q line on stdout (stdout %q, stderr %q)",
				name, listeningPrefix, p.stdout.String(), p.stderr.String())
		}
		p.addr = "http://" + normalizeHost(addr)
		return p, nil
	case <-p.done:
		return p, fmt.Errorf("%s: exited before listening: %v (stderr %q)", name, p.waitErr, p.stderr.String())
	case <-time.After(startTimeout):
		p.kill()
		return p, fmt.Errorf("%s: no listening line within %v", name, startTimeout)
	}
}

// runToExit launches binary with flags and waits for the process to
// exit on its own — the path for scenarios that expect a refusal
// (foreign WAL base, second writer). A process still alive at the
// deadline is killed and reported as an error.
func runToExit(name, binary string, flags []string, timeout time.Duration) (*proc, error) {
	p, _, err := spawn(name, binary, flags)
	if err != nil {
		return nil, err
	}
	select {
	case <-p.done:
		return p, nil
	case <-time.After(timeout):
		p.kill()
		<-p.done
		return p, fmt.Errorf("%s: expected the process to exit, still running after %v", name, timeout)
	}
}

// normalizeHost rewrites an unspecified bind host (":8080", "[::]:80",
// "0.0.0.0:80") to a loopback address a client can actually dial.
func normalizeHost(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	switch host {
	case "", "::", "0.0.0.0":
		return net.JoinHostPort("127.0.0.1", port)
	}
	return addr
}

// waitHealthy polls /healthz until it answers 200, the process exits,
// or the deadline passes. The listener is bound before the data load,
// so connections succeed early but requests only complete once the
// handler is serving.
func (p *proc) waitHealthy(client *http.Client, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		select {
		case <-p.done:
			return fmt.Errorf("%s: exited while coming up: %v (stderr %q)", p.name, p.waitErr, p.stderr.String())
		default:
		}
		resp, err := client.Get(p.addr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s: not healthy within %v", p.name, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// proto returns the binary-protocol address the process announced, or
// "" when it was started without -proto-addr.
func (p *proc) proto() string {
	p.protoMu.Lock()
	defer p.protoMu.Unlock()
	return p.protoAddr
}

// dist returns the cluster address the process announced, or "" when
// it was not started as a coordinator (-workers).
func (p *proc) dist() string {
	p.protoMu.Lock()
	defer p.protoMu.Unlock()
	return p.distAddr
}

// alive reports whether the process has not yet been waited on.
func (p *proc) alive() bool {
	select {
	case <-p.done:
		return false
	default:
		return true
	}
}

func (p *proc) kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
}

// signal sends sig and waits for exit (SIGKILL cannot be caught, so
// this always terminates; SIGTERM relies on the server's graceful
// path, hence the generous deadline).
func (p *proc) signal(sig syscall.Signal, timeout time.Duration) error {
	if p.cmd.Process == nil {
		return fmt.Errorf("%s: never started", p.name)
	}
	if err := p.cmd.Process.Signal(sig); err != nil {
		return fmt.Errorf("%s: delivering %v: %w", p.name, sig, err)
	}
	select {
	case <-p.done:
		return nil
	case <-time.After(timeout):
		p.kill()
		<-p.done
		return fmt.Errorf("%s: still running %v after %v; killed", p.name, sig, timeout)
	}
}

// exitState describes how the process ended: (signal, true) when
// terminated by a signal, (exit code, false) otherwise. Call only
// after the process exited.
func (p *proc) exitState() (code int, sig syscall.Signal, bySignal bool) {
	st := p.cmd.ProcessState
	if st == nil {
		return -1, 0, false
	}
	if ws, ok := st.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
		return -1, ws.Signal(), true
	}
	return st.ExitCode(), 0, false
}
