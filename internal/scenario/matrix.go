package scenario

import (
	"fmt"
	"time"

	tpchwl "repro/internal/tpch"
)

// Matrix is the declared scenario table. Every row is data: a name, a
// tier, and steps from the closed vocabulary — adding coverage for a
// new feature means appending a row here, not writing runner code.
// Quick rows are the CI smoke matrix; Full adds soak-length variants.
func Matrix() []Scenario {
	// heavySQL is a query slow enough (a six-way join with aggregation;
	// ~5ms at the quick-tier scale, the slowest of the 22) that a 1ms
	// deadline reliably fires mid-run and a single session stays busy
	// long past a small -admit-wait. TPC-H Q9, verbatim from the
	// workload, so the scenario exercises a statement the planner
	// actually serves.
	var heavySQL string
	for _, q := range tpchwl.Queries() {
		if q.ID == "q9" {
			heavySQL = q.SQL
		}
	}

	countMarker := fmt.Sprintf("SELECT COUNT(*) FROM nation WHERE n_comment = '%s'", Marker)
	countMarkerDS := fmt.Sprintf("SELECT COUNT(*) FROM warehouse WHERE w_state = '%s'", Marker)
	selectBig := fmt.Sprintf("SELECT n_nationkey FROM nation WHERE n_comment = '%s'", Marker)
	nationRow := func(key int64, name string) []any { return []any{key, name, 1, Marker} }

	return []Scenario{
		{
			Name: "kill9-replay-exact",
			Tier: Quick,
			Doc:  "kill -9 after acked writes; restart replays to the exact pre-crash epoch",
			Steps: []Step{
				Start{Flags: tpch("-wal", "{dir}/wal", "-wal-sync", "always")},
				Write{Table: "nation", Rows: [][]any{nationRow(900, "SCEN-A")}},
				Write{Table: "nation", Rows: [][]any{nationRow(901, "SCEN-B")}},
				Write{Table: "nation", Rows: [][]any{nationRow(902, "SCEN-C")}},
				Query{SQL: countMarker, WantCell: "3"},
				Kill{},
				Restart{},
				AssertEpoch{Acked: true},
				StatsEq{Field: "wal_replayed_epochs", Want: 3},
				Query{SQL: countMarker, WantLedger: true, EpochAcked: true},
			},
		},
		{
			Name: "kill9-midwrite",
			Tier: Quick,
			Doc:  "kill -9 lands mid write stream; no acked write may be lost",
			Steps: []Step{
				Start{Flags: tpch("-wal", "{dir}/wal", "-wal-sync", "always")},
				Load{Table: "nation", Row: []any{Key, "HOT", 1, Mark}, Writers: 4,
					Duration: 5 * time.Second, Background: true, TolerateCrash: true},
				Sleep{D: 400 * time.Millisecond},
				Kill{},
				AwaitLoad{},
				Restart{},
				AssertEpoch{AckedMin: true},
				Query{SQL: countMarker, WantLedgerMin: true},
				Health{},
			},
		},
		{
			Name: "graceful-sigterm",
			Tier: Quick,
			Doc:  "SIGTERM exits 0 with the WAL closed cleanly; nothing replays as torn",
			Steps: []Step{
				Start{Flags: tpch("-wal", "{dir}/wal", "-wal-sync", "interval")},
				Write{Table: "nation", Rows: [][]any{nationRow(900, "SCEN-A")}},
				Write{Table: "nation", Rows: [][]any{nationRow(901, "SCEN-B")}},
				Stop{},
				Restart{},
				AssertEpoch{Acked: true},
				StatsEq{Field: "wal_replayed_epochs", Want: 2},
				Query{SQL: countMarker, WantLedger: true},
			},
		},
		{
			Name: "torn-wal-tail",
			Tier: Quick,
			Doc:  "a crash-torn last record is truncated at boot; the valid prefix replays",
			Steps: []Step{
				Start{Flags: tpch("-wal", "{dir}/wal", "-wal-sync", "always")},
				Write{Table: "nation", Rows: [][]any{nationRow(900, "SCEN-A")}},
				Write{Table: "nation", Rows: [][]any{nationRow(901, "SCEN-B")}},
				Write{Table: "nation", Rows: [][]any{nationRow(902, "SCEN-C")}},
				Write{Table: "nation", Rows: [][]any{nationRow(903, "SCEN-D")}},
				Write{Table: "nation", Rows: [][]any{nationRow(904, "SCEN-E")}},
				Kill{},
				TruncateFile{Glob: "wal/wal.log", Trim: 3},
				Restart{},
				AssertEpoch{Acked: true, AckedDelta: -1},
				StatsEq{Field: "wal_replayed_epochs", Want: 4},
				Query{SQL: countMarker, WantCell: "4"},
			},
		},
		{
			Name: "bitflip-wal-tail",
			Tier: Quick,
			Doc:  "a bit-flipped last record fails its CRC and is dropped, not replayed",
			Steps: []Step{
				Start{Flags: tpch("-wal", "{dir}/wal", "-wal-sync", "always")},
				Write{Table: "nation", Rows: [][]any{nationRow(900, "SCEN-A")}},
				Write{Table: "nation", Rows: [][]any{nationRow(901, "SCEN-B")}},
				Write{Table: "nation", Rows: [][]any{nationRow(902, "SCEN-C")}},
				Kill{},
				CorruptFile{Glob: "wal/wal.log", Offset: -5},
				Restart{},
				AssertEpoch{Acked: true, AckedDelta: -1},
				StatsEq{Field: "wal_replayed_epochs", Want: 2},
				Query{SQL: countMarker, WantCell: "2"},
			},
		},
		{
			Name: "crash-during-checkpointing",
			Tier: Quick,
			Doc:  "kill -9 while the periodic checkpointer runs; boot state is still exact",
			Steps: []Step{
				Start{Flags: tpch("-wal", "{dir}/wal", "-wal-sync", "always", "-checkpoint-interval", "2")},
				Write{Table: "nation", Rows: [][]any{nationRow(900, "SCEN-A")}},
				Write{Table: "nation", Rows: [][]any{nationRow(901, "SCEN-B")}},
				Write{Table: "nation", Rows: [][]any{nationRow(902, "SCEN-C")}},
				Write{Table: "nation", Rows: [][]any{nationRow(903, "SCEN-D")}},
				Write{Table: "nation", Rows: [][]any{nationRow(904, "SCEN-E")}},
				WaitStats{Field: "checkpoints", Min: 1},
				Kill{},
				Restart{},
				AssertEpoch{Acked: true},
				StatsMin{Field: "checkpoint_epoch", Min: 2},
				Query{SQL: countMarker, WantLedger: true, EpochAcked: true},
			},
		},
		{
			Name: "checkpoint-boot-skips-replay",
			Tier: Quick,
			Doc:  "boot from a checkpoint replays only the WAL suffix past it",
			Steps: []Step{
				Start{Flags: tpch("-wal", "{dir}/wal", "-wal-sync", "always",
					"-checkpoint-interval", "3", "-checkpoint-truncate=false")},
				Write{Table: "nation", Rows: [][]any{nationRow(900, "SCEN-A")}},
				Write{Table: "nation", Rows: [][]any{nationRow(901, "SCEN-B")}},
				Write{Table: "nation", Rows: [][]any{nationRow(902, "SCEN-C")}},
				WaitStats{Field: "checkpoints", Min: 1},
				Write{Table: "nation", Rows: [][]any{nationRow(903, "SCEN-D")}},
				Write{Table: "nation", Rows: [][]any{nationRow(904, "SCEN-E")}},
				Stop{},
				Restart{},
				AssertEpoch{Acked: true},
				StatsMin{Field: "wal_skipped_epochs", Min: 3},
				StatsEq{Field: "wal_replayed_epochs", Want: 2},
				Query{SQL: countMarker, WantLedger: true},
			},
		},
		{
			Name: "corrupt-checkpoint-fallback",
			Tier: Quick,
			Doc:  "a bit-flipped checkpoint is skipped; boot falls back to full WAL replay",
			Steps: []Step{
				Start{Flags: tpch("-wal", "{dir}/wal", "-wal-sync", "always",
					"-checkpoint-interval", "3", "-checkpoint-truncate=false")},
				Write{Table: "nation", Rows: [][]any{nationRow(900, "SCEN-A")}},
				Write{Table: "nation", Rows: [][]any{nationRow(901, "SCEN-B")}},
				Write{Table: "nation", Rows: [][]any{nationRow(902, "SCEN-C")}},
				WaitStats{Field: "checkpoints", Min: 1},
				Write{Table: "nation", Rows: [][]any{nationRow(903, "SCEN-D")}},
				Write{Table: "nation", Rows: [][]any{nationRow(904, "SCEN-E")}},
				Stop{},
				CorruptFile{Glob: "wal/checkpoint-*.ckpt", Offset: -8},
				Restart{},
				StatsMin{Field: "checkpoint_errors", Min: 1},
				StatsEq{Field: "wal_replayed_epochs", Want: 5},
				AssertEpoch{Acked: true},
				Query{SQL: countMarker, WantLedger: true},
			},
		},
		{
			Name: "corrupt-checkpoint-failclosed",
			Tier: Quick,
			Doc:  "corrupt checkpoint + truncated log = a hole in history; boot refuses loudly",
			Steps: []Step{
				Start{Flags: tpch("-wal", "{dir}/wal", "-wal-sync", "always", "-checkpoint-interval", "3")},
				Write{Table: "nation", Rows: [][]any{nationRow(900, "SCEN-A")}},
				Write{Table: "nation", Rows: [][]any{nationRow(901, "SCEN-B")}},
				Write{Table: "nation", Rows: [][]any{nationRow(902, "SCEN-C")}},
				WaitStats{Field: "checkpoints", Min: 1},
				WaitStats{Field: "wal_truncations", Min: 1},
				Write{Table: "nation", Rows: [][]any{nationRow(903, "SCEN-D")}},
				Write{Table: "nation", Rows: [][]any{nationRow(904, "SCEN-E")}},
				Stop{},
				CorruptFile{Glob: "wal/checkpoint-*.ckpt", Offset: -8},
				ExpectStartFail{Reuse: "main", WantStderr: "for logged epoch"},
			},
		},
		{
			Name: "foreign-base-refused",
			Tier: Quick,
			Doc:  "a WAL dir is bound to its base; a different seed against it is refused",
			Steps: []Step{
				Start{Flags: tpch("-wal", "{dir}/wal", "-wal-sync", "always")},
				Write{Table: "nation", Rows: [][]any{nationRow(900, "SCEN-A")}},
				Stop{},
				ExpectStartFail{
					Flags:      []string{"-db", "tpch", "-scale", scenarioScale, "-seed", "13", "-addr", "127.0.0.1:0", "-wal", "{dir}/wal"},
					WantStderr: "different base catalog",
				},
			},
		},
		{
			Name: "second-writer-refused",
			Tier: Quick,
			Doc:  "the WAL dir flock refuses a second live writer instead of corrupting the log",
			Steps: []Step{
				Start{Flags: tpch("-wal", "{dir}/wal")},
				ExpectStartFail{Reuse: "main", WantStderr: "already has a live writer"},
				Health{}, // the first writer is unharmed
			},
		},
		{
			Name: "sql-fuzz-4xx",
			Tier: Quick,
			Doc:  "hostile SQL and malformed /query requests: always 4xx+JSON, never 500 or a crash",
			Steps: []Step{
				Start{Flags: tpch()},
				BadRequest{Body: `{"sql": ""}`, WantStatus: 400},
				BadRequest{Body: `{"sql": "SELECT"}`},
				BadRequest{Body: `{"sql": "SELECT * FROM no_such_table"}`},
				BadRequest{Body: `{"sql": "SELECT no_such_column FROM nation"}`},
				BadRequest{Body: `{"sql": "SELECT COUNT(*) FROM nation WHERE n_comment = 'unterminated"}`},
				BadRequest{Body: `{"sql": "SELECT ((((((((( FROM nation"}`},
				BadRequest{Body: `{"sql": "DROP TABLE nation"}`},
				BadRequest{Body: `{"sql": "SELECT n_name FROM nation; SELECT n_name FROM nation"}`},
				BadRequest{Body: `{"sql": 42}`, WantStatus: 400},
				BadRequest{Body: `{bad json`, WantStatus: 400},
				BadRequest{Method: "DELETE", Path: "/query", Body: `{"sql": "SELECT n_name FROM nation"}`, WantStatus: 405},
				BadRequest{Method: "GET", Path: "/query", WantStatus: 400}, // missing sql
				BadRequest{Method: "POST", Path: "/stats", WantStatus: 405},
				StatsMin{Field: "errors", Min: 5},
				Health{},
				Query{SQL: "SELECT COUNT(*) FROM nation", WantCell: "25"}, // still serving
			},
		},
		{
			Name: "write-fuzz-4xx",
			Tier: Quick,
			Doc:  "malformed /write payloads: always 4xx+JSON, nothing ever half-applied",
			Steps: []Step{
				Start{Flags: tpch()},
				BadRequest{Path: "/write", Body: `{"table": "nation", "insert": [[`, WantStatus: 400},
				BadRequest{Path: "/write", Body: `{"table": "no_such_table", "insert": [[1, "A", 1, "c"]]}`, WantStatus: 422},
				BadRequest{Path: "/write", Body: `{"table": "nation", "insert": [[1, "A"]]}`, WantStatus: 422},           // arity
				BadRequest{Path: "/write", Body: `{"table": "nation", "insert": [["x", "A", 1, "c"]]}`, WantStatus: 422}, // string into INT
				BadRequest{Path: "/write", Body: `{"table": "nation", "insert": [[1.5, "A", 1, "c"]]}`, WantStatus: 422}, // fractional INT
				BadRequest{Path: "/write", Body: `{"table": "nation", "insert": [[1, true, 1, "c"]]}`, WantStatus: 422},  // bool into STRING
				BadRequest{Path: "/write", Body: `{"table": "nation", "insert": [[1, "A", 1, ["c"]]]}`, WantStatus: 422}, // array cell
				BadRequest{Path: "/write", Body: `{"table": "nation", "insert": [["999999999999999999999", "A", 1, "c"]]}`, WantStatus: 422},
				BadRequest{Path: "/write", Body: `{"delete": [-1]}`, WantStatus: 422},
				BadRequest{Path: "/write", Body: `{"delete": [99999999999]}`, WantStatus: 422},
				BadRequest{Path: "/write", Body: `{"delete": [123456789]}`, WantStatus: 422},        // in range, no such vertex
				BadRequest{Path: "/write", Body: `{"insert": [[1, "A", 1, "c"]]}`, WantStatus: 422}, // no table
				BadRequest{Path: "/write", Body: `{}`, WantStatus: 422},                             // empty write
				BadRequest{Method: "GET", Path: "/write", WantStatus: 405},
				AssertEpoch{Want: 0}, // nothing landed
				Query{SQL: countMarker, WantCell: "0"},
				Health{},
			},
		},
		{
			Name: "pinned-query-replay",
			Tier: Quick,
			Doc:  "a -pin'd query's maintained answer stays byte-identical to cold runs across writes and a kill -9 + WAL replay",
			Steps: []Step{
				Start{Flags: tpch("-wal", "{dir}/wal", "-wal-sync", "always",
					"-verify-incremental", "-pin", countMarker)},
				Subscribe{SQL: countMarker, WantIncremental: true},
				Write{Table: "nation", Rows: [][]any{nationRow(900, "SCEN-A")}},
				Write{Table: "nation", Rows: [][]any{nationRow(901, "SCEN-B")}},
				Write{Table: "nation", Rows: [][]any{nationRow(902, "SCEN-C")}},
				PinnedAnswer{SQL: countMarker, WantCell: "3", MatchCold: true, EpochAcked: true},
				StatsMin{Field: "incremental_hits", Min: 3},
				StatsEq{Field: "incremental_mismatches", Want: 0},
				Kill{},
				Restart{}, // same flags: WAL replays, then -pin re-subscribes at the recovered epoch
				AssertEpoch{Acked: true},
				PinnedAnswer{SQL: countMarker, WantCell: "3", MatchCold: true, EpochAcked: true},
				Write{Table: "nation", Rows: [][]any{nationRow(903, "SCEN-D")}},
				PinnedAnswer{SQL: countMarker, WantCell: "4", MatchCold: true, EpochAcked: true},
				StatsMin{Field: "incremental_hits", Min: 1},
				StatsEq{Field: "incremental_mismatches", Want: 0},
				Health{},
			},
		},
		{
			Name: "subscribe-fuzz-4xx",
			Tier: Quick,
			Doc:  "hostile /subscribe traffic: always 4xx+JSON, never 500, epoch unmoved, nothing pinned",
			Steps: []Step{
				Start{Flags: tpch()},
				BadRequest{Path: "/subscribe", Body: `{bad json`, WantStatus: 400},
				BadRequest{Path: "/subscribe", Body: `{"sql": ""}`, WantStatus: 400},
				BadRequest{Path: "/subscribe", Body: `{"sql": 42}`, WantStatus: 400},
				BadRequest{Path: "/subscribe", Body: `{"sql": "SELECT"}`, WantStatus: 422},
				BadRequest{Path: "/subscribe", Body: `{"sql": "SELECT * FROM no_such_table"}`, WantStatus: 422},
				BadRequest{Path: "/subscribe", Body: `{"sql": "DROP TABLE nation"}`, WantStatus: 422},
				BadRequest{Method: "GET", Path: "/subscribe", WantStatus: 400},            // missing fp
				BadRequest{Method: "GET", Path: "/subscribe?fp=no-such", WantStatus: 404}, // unknown pin
				BadRequest{Method: "GET", Path: "/subscribe?fp=x&wait_ms=abc", WantStatus: 400},
				BadRequest{Method: "GET", Path: "/subscribe?fp=x&wait_ms=-5", WantStatus: 400},
				BadRequest{Method: "GET", Path: "/subscribe?fp=x&after=-1", WantStatus: 400},
				BadRequest{Method: "DELETE", Path: "/subscribe", WantStatus: 400},
				BadRequest{Method: "DELETE", Path: "/subscribe?fp=no-such", WantStatus: 404},
				BadRequest{Method: "PUT", Path: "/subscribe", Body: `{"sql": "SELECT n_name FROM nation"}`, WantStatus: 405},
				AssertEpoch{Want: 0},
				StatsEq{Field: "pinned_queries", Want: 0},
				Health{},
				Query{SQL: "SELECT COUNT(*) FROM nation", WantCell: "25"}, // still serving
			},
		},
		{
			Name: "triangles-scale",
			Tier: Quick,
			Doc:  "cyclic triangle count at scale: every θ variant must match the brute-force count",
			Steps: []Step{
				ExampleRun{Name: "triangles", Args: []string{"-nodes", "200", "-edges", "1200"},
					Want: []string{"verified OK at every θ", "cyclic=true"}},
			},
		},
		{
			Name: "components-scale",
			Tier: Quick,
			Doc:  "BSP label-propagation connected components, verified against union-find at 1 and 4 workers",
			Steps: []Step{
				ExampleRun{Name: "components", Args: []string{"-nodes", "20000", "-edges", "30000"},
					Want: []string{"verified OK"}},
			},
		},
		{
			Name: "bigint-string-roundtrip",
			Tier: Quick,
			Doc:  "INTs beyond 2^53 round-trip through their decimal-string form and survive replay",
			Steps: []Step{
				Start{Flags: tpch("-wal", "{dir}/wal", "-wal-sync", "always")},
				Write{Table: "nation", Rows: [][]any{{"9007199254740995", "BIG-A", 1, Marker}}},
				Query{SQL: selectBig, WantCell: "9007199254740995"},
				Write{Table: "nation", Rows: [][]any{{"-9007199254740997", "BIG-B", 1, Marker}}, DeletePrev: true},
				Query{SQL: selectBig, WantCell: "-9007199254740997"},
				Query{SQL: countMarker, WantCell: "1"},
				Kill{},
				Restart{},
				AssertEpoch{Acked: true},
				Query{SQL: selectBig, WantCell: "-9007199254740997"},
				Query{SQL: countMarker, WantLedger: true},
			},
		},
		{
			Name: "hotkey-skew",
			Tier: Quick,
			Doc:  "zipf-skewed insert/delete stream with concurrent readers; ledger stays exact",
			Steps: []Step{
				Start{Flags: tpch("-wal", "{dir}/wal", "-wal-sync", "interval", "-sessions", "4")},
				Load{Table: "nation", Row: []any{Key, "HOT", 1, Mark}, SQL: countMarker,
					Writers: 4, Readers: 2, Duration: 1200 * time.Millisecond,
					Zipf: 1.3, Keys: 8, DeleteFrac: 0.3},
				Query{SQL: countMarker, WantLedger: true},
				AssertEpoch{Acked: true},
				StatsEq{Field: "errors", Want: 0},
				Health{},
			},
		},
		{
			Name: "multi-tenant-mixed",
			Tier: Quick,
			Doc:  "TPC-H and TPC-DS servers under simultaneous write+read load, each exact",
			Steps: []Step{
				Start{Server: "tpch", Flags: tpch()},
				Start{Server: "tpcds", Flags: []string{"-db", "tpcds", "-scale", scenarioScale, "-seed", "7", "-addr", "127.0.0.1:0", "-sessions", "2"}},
				Load{Server: "tpch", Table: "nation", Row: []any{Key, "HOT", 1, Mark}, SQL: countMarker,
					Writers: 2, Readers: 1, Duration: time.Second, Background: true},
				Load{Server: "tpcds", Table: "warehouse", Row: []any{Key, Mark}, SQL: countMarkerDS,
					Writers: 2, Readers: 1, Duration: time.Second},
				AwaitLoad{Server: "tpch"},
				Query{Server: "tpch", SQL: countMarker, WantLedger: true},
				Query{Server: "tpcds", SQL: countMarkerDS, WantLedger: true},
				StatsEq{Server: "tpch", Field: "errors", Want: 0},
				StatsEq{Server: "tpcds", Field: "errors", Want: 0},
				Health{Server: "tpch"},
				Health{Server: "tpcds"},
			},
		},
		{
			Name: "proto-fuzz-barrage",
			Tier: Quick,
			Doc:  "hostile binary frames (bad magic, huge length, CRC flip, truncation): typed error or close, never a crash",
			Steps: []Step{
				Start{Flags: tpch("-proto-addr", "127.0.0.1:0")},
				ProtoFuzz{SQL: "SELECT COUNT(*) FROM nation", WantCell: "25"},
				Health{},
				Query{SQL: "SELECT COUNT(*) FROM nation", WantCell: "25"}, // HTTP surface also unharmed
			},
		},
		{
			Name: "worker-death-mid-superstep",
			Tier: Quick,
			Doc:  "SIGKILL one worker of a live topology under query load: typed errors, sticky 503, survivors stay up",
			Steps: []Step{
				Start{Server: "coord", Flags: tpch("-workers", "2", "-dist-addr", "127.0.0.1:0")},
				Start{Server: "w1", Flags: []string{"-worker", "{dist:coord}", "-addr", "127.0.0.1:0"}},
				Start{Server: "w2", Flags: []string{"-worker", "{dist:coord}", "-addr", "127.0.0.1:0"}},
				Query{Server: "coord", SQL: "SELECT COUNT(*) FROM nation", WantCell: "25"},
				KillWorkerUnderQuery{Server: "coord", Victim: "w1", SQL: heavySQL},
				Health{Server: "coord"},
				Health{Server: "w2"}, // the survivor left the query plane but stays diagnosable
				// Degradation is sticky and the refusal stays clean: no
				// rejoin, every later query is a typed 503.
				Query{Server: "coord", SQL: "SELECT COUNT(*) FROM nation", WantStatus: 503},
				Query{Server: "coord", SQL: heavySQL, WantStatus: 503},
			},
		},
		{
			Name: "dist-frame-fuzz",
			Tier: Quick,
			Doc:  "hostile frames at the cluster port (garbage, bad magic, huge length, truncation): refused, barrier never wedges",
			Steps: []Step{
				Start{Server: "coord", Flags: tpch("-workers", "1", "-dist-addr", "127.0.0.1:0")},
				Start{Server: "w1", Flags: []string{"-worker", "{dist:coord}", "-addr", "127.0.0.1:0"}},
				Query{Server: "coord", SQL: "SELECT COUNT(*) FROM nation", WantCell: "25"},
				DistFuzz{Server: "coord", SQL: "SELECT COUNT(*) FROM nation", WantCell: "25"},
				Health{Server: "coord"},
				Health{Server: "w1"},
			},
		},
		{
			Name: "pool-exhaustion-429",
			Tier: Quick,
			Doc:  "queries beyond the session pool past -admit-wait get 429 + Retry-After; service recovers untouched",
			Steps: []Step{
				// Scale 0.2, not the usual quick-tier 0.05: the heavy query must
				// hold the one session longer than the Go async-preemption
				// quantum (~10ms), or on a single-CPU host the handlers simply
				// serialize — each reaches admission only after the previous
				// query released the session, and nobody ever waits long enough
				// to be refused. q9 runs ~13ms at 0.2 vs ~5ms at 0.05.
				Start{Flags: []string{"-db", "tpch", "-scale", "0.2", "-seed", "7", "-addr", "127.0.0.1:0",
					"-sessions", "1", "-admit-wait", "5ms"}},
				Overload{SQL: heavySQL, Clients: 8},
				StatsMin{Field: "rejected", Min: 1},
				StatsEq{Field: "in_flight", Want: 0}, // every refusal and every success released its slot
				Query{SQL: "SELECT COUNT(*) FROM nation", WantCell: "25"},
				Health{},
			},
		},
		{
			Name: "deadline-408-no-leak",
			Tier: Quick,
			Doc:  "a 1ms deadline aborts a heavy query with 408; no in-flight session leaks and the pool keeps serving",
			Steps: []Step{
				Start{Flags: tpch()},
				Query{SQL: heavySQL, DeadlineMS: 1, WantTimeout: true},
				StatsMin{Field: "canceled", Min: 1},
				StatsEq{Field: "in_flight", Want: 0},
				Query{SQL: "SELECT COUNT(*) FROM nation", WantCell: "25"}, // the timed-out session is clean and reusable
				Health{},
			},
		},
		{
			Name: "crash-loop",
			Tier: Full,
			Doc:  "three kill/replay cycles in a row; the epoch chain never misses a link",
			Steps: []Step{
				Start{Flags: tpch("-wal", "{dir}/wal", "-wal-sync", "always")},
				Write{Table: "nation", Rows: [][]any{nationRow(900, "SCEN-A")}},
				Write{Table: "nation", Rows: [][]any{nationRow(901, "SCEN-B")}},
				Kill{}, Restart{},
				Write{Table: "nation", Rows: [][]any{nationRow(902, "SCEN-C")}},
				Write{Table: "nation", Rows: [][]any{nationRow(903, "SCEN-D")}},
				Kill{}, Restart{},
				Write{Table: "nation", Rows: [][]any{nationRow(904, "SCEN-E")}},
				Write{Table: "nation", Rows: [][]any{nationRow(905, "SCEN-F")}},
				Kill{}, Restart{},
				AssertEpoch{Acked: true},
				Query{SQL: countMarker, WantLedger: true},
			},
		},
		{
			Name: "hotkey-skew-soak",
			Tier: Full,
			Doc:  "longer, wider skewed stream at a bigger scale",
			Steps: []Step{
				Start{Flags: []string{"-db", "tpch", "-scale", "0.2", "-seed", "7", "-addr", "127.0.0.1:0",
					"-sessions", "4", "-wal", "{dir}/wal", "-wal-sync", "interval"}},
				Load{Table: "nation", Row: []any{Key, "HOT", 1, Mark}, SQL: countMarker,
					Writers: 8, Readers: 4, Duration: 6 * time.Second,
					Zipf: 1.5, Keys: 4, DeleteFrac: 0.4},
				Query{SQL: countMarker, WantLedger: true},
				AssertEpoch{Acked: true},
				StatsEq{Field: "errors", Want: 0},
			},
		},
		{
			Name: "triangles-scale-soak",
			Tier: Full,
			Doc:  "the triangle drill at a larger follower graph",
			Steps: []Step{
				ExampleRun{Name: "triangles", Args: []string{"-nodes", "400", "-edges", "3000"},
					Want: []string{"verified OK at every θ", "cyclic=true"}, Timeout: 10 * time.Minute},
			},
		},
		{
			Name: "components-scale-soak",
			Tier: Full,
			Doc:  "connected components on a graph 10x the quick row",
			Steps: []Step{
				ExampleRun{Name: "components", Args: []string{"-nodes", "200000", "-edges", "300000"},
					Want: []string{"verified OK"}, Timeout: 10 * time.Minute},
			},
		},
		{
			Name: "kill9-midwrite-tpcds",
			Tier: Full,
			Doc:  "the mid-write crash drill on the TPC-DS catalog",
			Steps: []Step{
				Start{Flags: []string{"-db", "tpcds", "-scale", scenarioScale, "-seed", "7", "-addr", "127.0.0.1:0",
					"-sessions", "2", "-wal", "{dir}/wal", "-wal-sync", "always"}},
				Load{Table: "warehouse", Row: []any{Key, Mark}, Writers: 4,
					Duration: 5 * time.Second, Background: true, TolerateCrash: true},
				Sleep{D: 400 * time.Millisecond},
				Kill{},
				AwaitLoad{},
				Restart{},
				AssertEpoch{AckedMin: true},
				Query{SQL: countMarkerDS, WantLedgerMin: true},
				Health{},
			},
		},
	}
}

// scenarioScale is the data scale quick rows boot at — big enough for
// real queries, small enough that a scenario's dominant cost is the
// script, not the load.
const scenarioScale = "0.05"

// tpch builds the standard quick-tier tagserve argv plus extras.
func tpch(extra ...string) []string {
	base := []string{"-db", "tpch", "-scale", scenarioScale, "-seed", "7", "-addr", "127.0.0.1:0", "-sessions", "2"}
	return append(base, extra...)
}
