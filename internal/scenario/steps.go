package scenario

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// ---- process control ----------------------------------------------------

// Start launches a named tagserve with the given flags ({dir} expands
// to the scenario directory) and waits until it is healthy. The flags
// are remembered for Restart.
type Start struct {
	Server string // defaults to "main"
	Flags  []string
}

func (s Start) Describe() string { return fmt.Sprintf("start %s %v", orMain(s.Server), s.Flags) }

func (s Start) Run(c *Ctx) error {
	name := orMain(s.Server)
	if p, ok := c.procs[name]; ok && p.alive() {
		return fmt.Errorf("server %q already running", name)
	}
	flags := c.expandAll(s.Flags)
	p, err := startProcess(name, c.Binary, flags)
	if err != nil {
		return err
	}
	if err := p.waitHealthy(c.Client, startTimeout); err != nil {
		p.kill()
		<-p.done
		return err
	}
	c.procs[name] = p
	c.lastFlags[name] = flags
	c.Logf("%s up at %s", name, p.addr)
	return nil
}

// Restart relaunches a named server with the same flags as its last
// Start (plus Extra), after it has exited. This is where crash
// scenarios meet recovery: same WAL dir, same base, fresh process.
type Restart struct {
	Server string
	Extra  []string
}

func (s Restart) Describe() string { return fmt.Sprintf("restart %s %v", orMain(s.Server), s.Extra) }

func (s Restart) Run(c *Ctx) error {
	name := orMain(s.Server)
	flags, ok := c.lastFlags[name]
	if !ok {
		return fmt.Errorf("server %q was never started", name)
	}
	if p, ok := c.procs[name]; ok && p.alive() {
		return fmt.Errorf("server %q still running; kill or stop it first", name)
	}
	return Start{Server: name, Flags: append(append([]string(nil), flags...), c.expandAll(s.Extra)...)}.Run(c)
}

// Kill delivers SIGKILL — the crash. The step verifies the process
// actually died by that signal, so a scenario cannot silently degrade
// into testing a clean exit.
type Kill struct{ Server string }

func (s Kill) Describe() string { return "kill -9 " + orMain(s.Server) }

func (s Kill) Run(c *Ctx) error {
	p, err := c.proc(s.Server)
	if err != nil {
		return err
	}
	if err := p.signal(syscall.SIGKILL, 10*time.Second); err != nil {
		return err
	}
	if _, sig, bySignal := p.exitState(); !bySignal || sig != syscall.SIGKILL {
		return fmt.Errorf("%s: expected death by SIGKILL, got %v", p.name, p.cmd.ProcessState)
	}
	return nil
}

// Stop delivers SIGTERM and requires a clean exit (code 0): in-flight
// requests drained, WAL fsynced and closed. Anything else — a hang, a
// crash on the shutdown path — fails the scenario.
type Stop struct{ Server string }

func (s Stop) Describe() string { return "stop (SIGTERM) " + orMain(s.Server) }

func (s Stop) Run(c *Ctx) error {
	p, err := c.proc(s.Server)
	if err != nil {
		return err
	}
	if err := p.signal(syscall.SIGTERM, 30*time.Second); err != nil {
		return err
	}
	if code, sig, bySignal := p.exitState(); bySignal || code != 0 {
		return fmt.Errorf("%s: expected clean exit 0 on SIGTERM, got code=%d signal=%v (stderr %q)",
			p.name, code, sig, p.stderr.String())
	}
	return nil
}

// ExpectStartFail launches a server expecting it to refuse to serve:
// exit on its own, nonzero, with WantStderr in its stderr. Reuse names
// a started server whose flags to reuse (Extra appended); otherwise
// Flags is the full argv.
type ExpectStartFail struct {
	Server     string // name for logs only; defaults to "refused"
	Flags      []string
	Reuse      string // reuse lastFlags of this server
	Extra      []string
	WantStderr string
}

func (s ExpectStartFail) Describe() string {
	return fmt.Sprintf("expect start failure (%s)", s.WantStderr)
}

func (s ExpectStartFail) Run(c *Ctx) error {
	flags := c.expandAll(s.Flags)
	if s.Reuse != "" {
		prev, ok := c.lastFlags[orMain(s.Reuse)]
		if !ok {
			return fmt.Errorf("no flags to reuse from server %q", s.Reuse)
		}
		flags = append(append([]string(nil), prev...), c.expandAll(s.Extra)...)
	}
	name := s.Server
	if name == "" {
		name = "refused"
	}
	p, err := runToExit(name, c.Binary, flags, startTimeout)
	if err != nil {
		return err
	}
	code, sig, bySignal := p.exitState()
	if bySignal {
		return fmt.Errorf("%s: died by signal %v instead of refusing cleanly", name, sig)
	}
	if code == 0 {
		return fmt.Errorf("%s: expected a startup refusal, got exit 0 (stdout %q)", name, p.stdout.String())
	}
	if s.WantStderr != "" && !strings.Contains(p.stderr.String(), s.WantStderr) {
		return fmt.Errorf("%s: stderr %q does not contain %q", name, p.stderr.String(), s.WantStderr)
	}
	return nil
}

// ---- traffic ------------------------------------------------------------

// Write POSTs one /write batch and expects success. Acked epoch,
// inserted vertex ids, and the row ledger are recorded for later
// assertions. DeletePrev deletes the ids of the previous successful
// Write on the same server.
type Write struct {
	Server     string
	Table      string
	Rows       [][]any
	Delete     []int64
	DeletePrev bool
}

func (s Write) Describe() string {
	return fmt.Sprintf("write %s rows=%d del=%d delPrev=%v", s.Table, len(s.Rows), len(s.Delete), s.DeletePrev)
}

func (s Write) Run(c *Ctx) error {
	st := c.state(s.Server)
	del := append([]int64(nil), s.Delete...)
	if s.DeletePrev {
		st.mu.Lock()
		del = append(del, st.last...)
		st.mu.Unlock()
	}
	payload := map[string]any{}
	if s.Table != "" {
		payload["table"] = s.Table
	}
	if len(s.Rows) > 0 {
		payload["insert"] = s.Rows
	}
	if len(del) > 0 {
		payload["delete"] = del
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	status, _, out, err := c.do(s.Server, http.MethodPost, "/write", body)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("/write: status %d: %s", status, out)
	}
	var resp struct {
		Epoch    uint64  `json:"epoch"`
		Inserted []int64 `json:"inserted"`
	}
	if err := json.Unmarshal(out, &resp); err != nil {
		return fmt.Errorf("/write response: %w", err)
	}
	st.ack(resp.Epoch, int64(len(s.Rows))-int64(len(del)))
	st.mu.Lock()
	st.last = resp.Inserted
	st.mu.Unlock()
	return nil
}

// BadRequest sends a hostile or malformed request and requires the
// server to answer with a client error — a 4xx carrying a JSON
// {"error": ...} body. A 5xx, a non-JSON body, or a dropped connection
// (a crashed handler) fails the scenario. WantStatus pins the exact
// code when nonzero.
type BadRequest struct {
	Server     string
	Method     string // defaults to POST
	Path       string // defaults to /query
	Body       string // sent verbatim — malformed JSON is the point
	WantStatus int
}

func (s BadRequest) Describe() string {
	method, path := s.Method, s.Path
	if method == "" {
		method = http.MethodPost
	}
	if path == "" {
		path = "/query"
	}
	body := s.Body
	if len(body) > 40 {
		body = body[:40] + "..."
	}
	return fmt.Sprintf("fuzz %s %s %q", method, path, body)
}

func (s BadRequest) Run(c *Ctx) error {
	method, path := s.Method, s.Path
	if method == "" {
		method = http.MethodPost
	}
	if path == "" {
		path = "/query"
	}
	var body []byte
	if s.Body != "" {
		body = []byte(s.Body)
	}
	status, _, out, err := c.do(s.Server, method, path, body)
	if err != nil {
		return fmt.Errorf("request died (crashed handler?): %w", err)
	}
	if s.WantStatus != 0 && status != s.WantStatus {
		return fmt.Errorf("status %d, want %d (body %s)", status, s.WantStatus, out)
	}
	if status < 400 || status >= 500 {
		return fmt.Errorf("status %d, want a 4xx client error (body %s)", status, out)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(out, &e); err != nil || e.Error == "" {
		return fmt.Errorf("status %d without a JSON error body: %s", status, out)
	}
	return nil
}

// Query runs a SQL statement via GET /query and asserts on the answer.
// Cell assertions address the first row's first column — the natural
// shape of the COUNT(*) probes scenarios use.
type Query struct {
	Server      string
	SQL         string
	WantCell    string // exact first-cell value (rendered as a string)
	WantCellMin int64  // first cell, parsed as an integer, must be >= this
	WantLedger  bool   // first cell must equal the server's acked row ledger
	// WantLedgerMin relaxes WantLedger to >= — for crashes that may
	// replay a never-acked record appended between WAL write and swap.
	WantLedgerMin bool
	EpochAcked    bool // the response epoch must be >= the acked epoch
	WantErr       bool // expect a 4xx JSON error instead of rows
	// WantStatus expects this exact non-200 status with a JSON error
	// body — the shape of a 503 from a degraded distributed topology.
	WantStatus int
	DeadlineMS int // per-query deadline sent as deadline_ms (0 = none)
	// WantTimeout expects the deadline to fire: a 408 with a JSON error
	// body, the overload-survivability contract for deadlined queries.
	WantTimeout bool
}

func (s Query) Describe() string {
	if s.WantTimeout {
		return fmt.Sprintf("query (deadline %dms, expect 408) %s", s.DeadlineMS, s.SQL)
	}
	return "query " + s.SQL
}

func (s Query) Run(c *Ctx) error {
	path := "/query?sql=" + url.QueryEscape(s.SQL)
	if s.DeadlineMS > 0 {
		path += "&deadline_ms=" + strconv.Itoa(s.DeadlineMS)
	}
	status, _, out, err := c.do(s.Server, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	if s.WantTimeout {
		if status != http.StatusRequestTimeout {
			return fmt.Errorf("status %d, want 408 (deadline %dms did not fire; body %s)", status, s.DeadlineMS, out)
		}
		return (BadRequest{}).check(status, out)
	}
	if s.WantErr {
		return (BadRequest{}).check(status, out)
	}
	if s.WantStatus != 0 {
		if status != s.WantStatus {
			return fmt.Errorf("status %d, want %d (body %s)", status, s.WantStatus, out)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(out, &e); err != nil || e.Error == "" {
			return fmt.Errorf("status %d without a JSON error body: %s", status, out)
		}
		return nil
	}
	if status != http.StatusOK {
		return fmt.Errorf("status %d: %s", status, out)
	}
	var resp struct {
		Rows  [][]any `json:"rows"`
		Epoch uint64  `json:"epoch"`
	}
	if err := json.Unmarshal(out, &resp); err != nil {
		return fmt.Errorf("response: %w", err)
	}
	cell, haveCell := "", false
	if len(resp.Rows) > 0 && len(resp.Rows[0]) > 0 {
		cell, haveCell = cellString(resp.Rows[0][0]), true
	}
	if s.WantCell != "" {
		if !haveCell {
			return fmt.Errorf("no rows, want cell %q", s.WantCell)
		}
		if cell != s.WantCell {
			return fmt.Errorf("cell %q, want %q", cell, s.WantCell)
		}
	}
	if s.WantCellMin != 0 || s.WantLedger || s.WantLedgerMin {
		if !haveCell {
			return fmt.Errorf("no rows, want a numeric cell")
		}
		n, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return fmt.Errorf("cell %q is not an integer: %w", cell, err)
		}
		if s.WantCellMin != 0 && n < s.WantCellMin {
			return fmt.Errorf("cell %d < min %d", n, s.WantCellMin)
		}
		if s.WantLedger || s.WantLedgerMin {
			_, ledger := c.state(s.Server).snapshot()
			if s.WantLedger && n != ledger {
				return fmt.Errorf("cell %d != acked row ledger %d", n, ledger)
			}
			if s.WantLedgerMin && n < ledger {
				return fmt.Errorf("cell %d < acked row ledger %d: acknowledged rows were lost", n, ledger)
			}
		}
	}
	if s.EpochAcked {
		acked, _ := c.state(s.Server).snapshot()
		if resp.Epoch < acked {
			return fmt.Errorf("answered on epoch %d, below acked epoch %d", resp.Epoch, acked)
		}
	}
	return nil
}

// check applies BadRequest's 4xx-with-JSON-error contract to an
// already-performed response, for Query{WantErr}.
func (BadRequest) check(status int, out []byte) error {
	if status < 400 || status >= 500 {
		return fmt.Errorf("status %d, want a 4xx client error (body %s)", status, out)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(out, &e); err != nil || e.Error == "" {
		return fmt.Errorf("status %d without a JSON error body: %s", status, out)
	}
	return nil
}

// cellString renders a JSON cell the way scenarios declare expectations:
// numbers without a trailing .0, big INTs (served as strings) verbatim.
func cellString(v any) string {
	switch v := v.(type) {
	case string:
		return v
	case float64:
		return strconv.FormatFloat(v, 'f', -1, 64)
	case bool:
		return strconv.FormatBool(v)
	case nil:
		return "null"
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Health asserts /healthz answers 200 — the "did the fuzz barrage kill
// it" probe.
type Health struct{ Server string }

func (s Health) Describe() string { return "healthz " + orMain(s.Server) }

func (s Health) Run(c *Ctx) error {
	status, _, out, err := c.do(s.Server, http.MethodGet, "/healthz", nil)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("/healthz: status %d: %s", status, out)
	}
	return nil
}

// ---- assertions on /stats ----------------------------------------------

// AssertEpoch asserts the served epoch from /stats. Exactly one of the
// forms is used per row: Want (a literal), Acked (+AckedDelta), or
// AckedMin (>= acked — for crashes that may replay a never-acked
// record appended between WAL write and swap).
type AssertEpoch struct {
	Server     string
	Want       uint64
	Acked      bool
	AckedDelta int64
	AckedMin   bool
}

func (s AssertEpoch) Describe() string {
	switch {
	case s.Acked:
		return fmt.Sprintf("assert epoch == acked%+d", s.AckedDelta)
	case s.AckedMin:
		return "assert epoch >= acked"
	default:
		return fmt.Sprintf("assert epoch == %d", s.Want)
	}
}

func (s AssertEpoch) Run(c *Ctx) error {
	v, err := c.statField(s.Server, "epoch")
	if err != nil {
		return err
	}
	epoch := uint64(v)
	acked, _ := c.state(s.Server).snapshot()
	switch {
	case s.Acked:
		want := uint64(int64(acked) + s.AckedDelta)
		if epoch != want {
			return fmt.Errorf("epoch %d, want exactly %d (acked %d%+d)", epoch, want, acked, s.AckedDelta)
		}
	case s.AckedMin:
		if epoch < acked {
			return fmt.Errorf("epoch %d below acked %d: acknowledged writes were lost", epoch, acked)
		}
	default:
		if epoch != s.Want {
			return fmt.Errorf("epoch %d, want %d", epoch, s.Want)
		}
	}
	return nil
}

// StatsMin asserts a /stats counter is at least Min.
type StatsMin struct {
	Server string
	Field  string
	Min    int64
}

func (s StatsMin) Describe() string { return fmt.Sprintf("assert %s >= %d", s.Field, s.Min) }

func (s StatsMin) Run(c *Ctx) error {
	v, err := c.statField(s.Server, s.Field)
	if err != nil {
		return err
	}
	if int64(v) < s.Min {
		return fmt.Errorf("%s = %d, want >= %d", s.Field, int64(v), s.Min)
	}
	return nil
}

// StatsEq asserts a /stats counter exactly.
type StatsEq struct {
	Server string
	Field  string
	Want   int64
}

func (s StatsEq) Describe() string { return fmt.Sprintf("assert %s == %d", s.Field, s.Want) }

func (s StatsEq) Run(c *Ctx) error {
	v, err := c.statField(s.Server, s.Field)
	if err != nil {
		return err
	}
	if int64(v) != s.Want {
		return fmt.Errorf("%s = %d, want %d", s.Field, int64(v), s.Want)
	}
	return nil
}

// WaitStats polls /stats until Field reaches Min — how scenarios meet
// background work (the periodic checkpointer) without sleeping blind.
type WaitStats struct {
	Server  string
	Field   string
	Min     int64
	Timeout time.Duration
}

func (s WaitStats) Describe() string { return fmt.Sprintf("wait until %s >= %d", s.Field, s.Min) }

func (s WaitStats) Run(c *Ctx) error {
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for {
		v, err := c.statField(s.Server, s.Field)
		if err != nil {
			return err
		}
		if int64(v) >= s.Min {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s still %d (< %d) after %v", s.Field, int64(v), s.Min, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// ---- on-disk damage -----------------------------------------------------

// resolveOne resolves a {dir}-relative glob to exactly one file.
func resolveOne(c *Ctx, glob string) (string, error) {
	pattern := c.expand(glob)
	if !filepath.IsAbs(pattern) {
		pattern = filepath.Join(c.Dir, pattern)
	}
	matches, err := filepath.Glob(pattern)
	if err != nil {
		return "", err
	}
	if len(matches) != 1 {
		return "", fmt.Errorf("glob %s matched %d files, want exactly 1: %v", pattern, len(matches), matches)
	}
	return matches[0], nil
}

// CorruptFile XORs one byte of a file — bit-flip damage at a declared
// offset (negative counts from the end). The server must be stopped
// first; the next boot meets the damage.
type CorruptFile struct {
	Glob   string // {dir}-relative glob; must match exactly one file
	Offset int64  // byte offset; negative = from end
	XOR    byte   // flip mask; 0 means 0xFF
}

func (s CorruptFile) Describe() string {
	return fmt.Sprintf("corrupt %s at offset %d", s.Glob, s.Offset)
}

func (s CorruptFile) Run(c *Ctx) error {
	path, err := resolveOne(c, s.Glob)
	if err != nil {
		return err
	}
	mask := s.XOR
	if mask == 0 {
		mask = 0xFF
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	off := s.Offset
	if off < 0 {
		off += fi.Size()
	}
	if off < 0 || off >= fi.Size() {
		return fmt.Errorf("offset %d outside %s (%d bytes)", s.Offset, path, fi.Size())
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= mask
	if _, err := f.WriteAt(b[:], off); err != nil {
		return err
	}
	c.Logf("flipped byte %d of %s (xor %#x)", off, path, mask)
	return f.Sync()
}

// TruncateFile cuts Trim bytes off a file's end — a torn tail, as a
// crash mid-append would leave.
type TruncateFile struct {
	Glob string
	Trim int64
}

func (s TruncateFile) Describe() string {
	return fmt.Sprintf("truncate %s by %d bytes", s.Glob, s.Trim)
}

func (s TruncateFile) Run(c *Ctx) error {
	path, err := resolveOne(c, s.Glob)
	if err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if s.Trim <= 0 || s.Trim > fi.Size() {
		return fmt.Errorf("cannot trim %d bytes from %s (%d bytes)", s.Trim, path, fi.Size())
	}
	if err := os.Truncate(path, fi.Size()-s.Trim); err != nil {
		return err
	}
	c.Logf("truncated %s to %d bytes", path, fi.Size()-s.Trim)
	return nil
}

// Sleep pauses the script — for racing a crash into a background
// activity window. Prefer WaitStats when a counter can be watched.
type Sleep struct{ D time.Duration }

func (s Sleep) Describe() string { return "sleep " + s.D.String() }

func (s Sleep) Run(c *Ctx) error { time.Sleep(s.D); return nil }
