// Package scenario is the declarative end-to-end test harness: it
// drives a real tagserve process — its own binary, its own pid, killed
// with real signals — through declared scripts of steps, and asserts on
// what only a process boundary can show (replay after kill -9, torn WAL
// tails, flock refusal of a second writer, 4xx-never-500 behavior under
// hostile input, sustained skewed load).
//
// The design is a declared matrix in the shape of oc-mirror's TESTCASES
// e2e runner: each Scenario is a short table entry — a name, a tier,
// and a list of Steps — and the step vocabulary (start, kill, restart,
// write, query, corrupt bytes, fuzz request, load stream, stat
// assertion) is closed and reusable, so covering the next feature costs
// a new table row, never new runner code. Matrix() holds the rows;
// cmd/tagscenario and `tagbench -exp scenario` execute them.
//
// Every scenario runs in its own scratch directory with its own server
// processes; `{dir}` inside step flags and paths expands to that
// directory, which is how rows share a WAL dir across restarts without
// naming absolute paths.
package scenario

import (
	"fmt"
	"regexp"
)

// Tier classifies a scenario by cost. Quick rows finish in a few
// seconds at tiny scale and run in CI on every push; Full rows add
// longer load windows and bigger scales for release-level soak.
type Tier int

const (
	// Quick scenarios are the CI smoke matrix.
	Quick Tier = iota
	// Full scenarios include everything Quick plus the heavier rows.
	Full
)

// String names the tier for reports and flags.
func (t Tier) String() string {
	if t == Quick {
		return "quick"
	}
	return "full"
}

// Scenario is one declared end-to-end script: a real tagserve (or
// several, named) driven through Steps in order. A step error fails the
// scenario at that step; assertions are steps like any other.
type Scenario struct {
	Name  string
	Tier  Tier
	Doc   string // one-line intent, shown by -list and in failure reports
	Steps []Step
}

// Step is one unit of a scenario script. Implementations are small
// declarative structs (Start, Kill, Write, Query, CorruptFile, Load,
// ...) — a scenario author composes them, never subclasses the runner.
type Step interface {
	// Describe renders the step for logs and failure messages.
	Describe() string
	// Run executes the step against the scenario's Ctx.
	Run(c *Ctx) error
}

// Select filters scenarios: rows at or below tier whose name matches
// pattern (empty pattern = all). An invalid pattern is an error.
func Select(rows []Scenario, tier Tier, pattern string) ([]Scenario, error) {
	var re *regexp.Regexp
	if pattern != "" {
		var err error
		if re, err = regexp.Compile(pattern); err != nil {
			return nil, fmt.Errorf("scenario: bad -run pattern: %w", err)
		}
	}
	var out []Scenario
	for _, s := range rows {
		if s.Tier > tier {
			continue
		}
		if re != nil && !re.MatchString(s.Name) {
			continue
		}
		out = append(out, s)
	}
	return out, nil
}
