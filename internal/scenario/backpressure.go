package scenario

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/codec"
	"repro/internal/proto"
	"repro/internal/serve"
)

// Overload drives more concurrent copies of a heavy query than the
// server has pooled sessions, and requires admission control to refuse
// the overflow the contractual way: a 429 carrying a Retry-After hint
// and a JSON error body, while at least one competing query still
// succeeds. Rounds repeat until both outcomes have been observed; a
// 500, a dropped connection, or a 429 without the hint fails the
// scenario immediately.
type Overload struct {
	Server  string
	SQL     string
	Clients int           // concurrent queries per round; defaults to 8
	Timeout time.Duration // overall bound; defaults to 30s
}

func (s Overload) Describe() string {
	clients := s.Clients
	if clients <= 0 {
		clients = 8
	}
	return fmt.Sprintf("overload: %d concurrent heavy queries, expect 200s and 429+Retry-After", clients)
}

func (s Overload) Run(c *Ctx) error {
	clients := s.Clients
	if clients <= 0 {
		clients = 8
	}
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	path := "/query?sql=" + url.QueryEscape(s.SQL)
	type reply struct {
		status int
		hdr    http.Header
		body   []byte
		err    error
	}
	deadline := time.Now().Add(timeout)
	var ok200, ok429 bool
	for !(ok200 && ok429) {
		if time.Now().After(deadline) {
			return fmt.Errorf("overload evidence incomplete after %v: saw success=%v refusal=%v", timeout, ok200, ok429)
		}
		replies := make(chan reply, clients)
		for i := 0; i < clients; i++ {
			go func() {
				status, hdr, body, err := c.do(s.Server, http.MethodGet, path, nil)
				replies <- reply{status, hdr, body, err}
			}()
		}
		for i := 0; i < clients; i++ {
			r := <-replies
			if r.err != nil {
				return fmt.Errorf("request died under overload (crashed handler?): %w", r.err)
			}
			switch r.status {
			case http.StatusOK:
				ok200 = true
			case http.StatusTooManyRequests:
				after := r.hdr.Get("Retry-After")
				if n, err := strconv.Atoi(after); err != nil || n < 1 {
					return fmt.Errorf("429 carried Retry-After %q, want an integer >= 1", after)
				}
				if err := (BadRequest{}).check(r.status, r.body); err != nil {
					return err
				}
				ok429 = true
			default:
				return fmt.Errorf("status %d under overload, want 200 or 429 (body %s)", r.status, r.body)
			}
		}
	}
	return nil
}

// ProtoFuzz throws hostile byte sequences at the binary-protocol
// listener — wrong magic, an absurd length prefix, a flipped CRC bit, a
// frame truncated mid-payload — each on its own connection. The
// contract under fire: the server answers with a typed error frame or
// just closes the connection; it never crashes and never leaves a
// connection wedged. Afterwards an honest binary client must still get
// a correct answer, the proof the listener survived the barrage.
type ProtoFuzz struct {
	Server   string
	SQL      string // honest-client probe run after the barrage
	WantCell string // expected first cell of the probe's first row
}

func (s ProtoFuzz) Describe() string { return "proto fuzz barrage on " + orMain(s.Server) }

func (s ProtoFuzz) Run(c *Ctx) error {
	p, err := c.proc(s.Server)
	if err != nil {
		return err
	}
	addr := p.proto()
	if addr == "" {
		return fmt.Errorf("%s: no proto:// address announced (started without -proto-addr?)", p.name)
	}

	// The kind bytes (1=HELLO, 2=QUERY) and magic mirror the wire
	// constants in internal/proto. Drift would only soften the fuzz —
	// the honest-client probe below catches a genuinely broken wire.
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		if err := codec.WriteFrame(&buf, payload); err != nil {
			panic(err) // bytes.Buffer writes cannot fail
		}
		return buf.Bytes()
	}
	hello := frame(append([]byte{1}, codec.AppendString(nil, "TAGP1")...))
	badMagic := frame(append([]byte{1}, codec.AppendString(nil, "HTTP9")...))
	crcFlip := append([]byte(nil), hello...)
	crcFlip[len(crcFlip)-1] ^= 0xFF // damage the payload under an already-written CRC

	cases := []struct {
		name    string
		payload []byte
	}{
		{"http-speaker", []byte("GET /query HTTP/1.1\r\nHost: fuzz\r\n\r\n")},
		{"bad-magic-hello", badMagic},
		{"oversized-length", []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xDE, 0xAD, 0xBE, 0xEF}},
		{"zero-length-frame", []byte{0, 0, 0, 0, 0, 0, 0, 0}}, // the codec forbids empty payloads; hand-rolled header
		{"crc-flip", crcFlip},
		{"truncated-mid-frame", hello[:len(hello)-3]},
		{"query-before-hello", frame([]byte{2, 0})},
		{"garbage-kind-after-hello", append(append([]byte(nil), hello...), frame([]byte{0x7F, 0xEE})...)},
		{"truncated-query-after-hello", append(append([]byte(nil), hello...), frame([]byte{2})...)},
	}
	for _, tc := range cases {
		if err := throwHostile(addr, tc.payload); err != nil {
			return fmt.Errorf("%s: %w", tc.name, err)
		}
		if !p.alive() {
			return fmt.Errorf("%s: server died on hostile frame %s (stderr %q)", p.name, tc.name, p.stderr.String())
		}
	}

	cl, err := proto.Dial(addr)
	if err != nil {
		return fmt.Errorf("honest client after barrage: %w", err)
	}
	defer cl.Close()
	res, err := cl.Query(s.SQL)
	if err != nil {
		return fmt.Errorf("honest query after barrage: %w", err)
	}
	if len(res.Rows.Tuples) == 0 || len(res.Rows.Tuples[0]) == 0 {
		return fmt.Errorf("honest query after barrage returned no rows")
	}
	if s.WantCell != "" {
		cell := cellString(serve.JSONValue(res.Rows.Tuples[0][0]))
		if cell != s.WantCell {
			return fmt.Errorf("honest query after barrage: cell %q, want %q", cell, s.WantCell)
		}
	}
	return nil
}

// throwHostile writes one hostile payload on a fresh connection, half-
// closes it (a truncated frame is a peer that stopped sending), and
// requires the server to end the conversation — an error frame, EOF, or
// a reset all pass; only a hang fails.
func throwHostile(addr string, payload []byte) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write(payload); err != nil {
		return nil // the server already slammed the door — that is a pass
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	if _, err := io.ReadAll(conn); err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return fmt.Errorf("server neither answered nor closed the connection within 10s")
		}
		return nil // a reset is as good as a close
	}
	return nil
}
