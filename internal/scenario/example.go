package scenario

import (
	"context"
	"fmt"
	"os/exec"
	"strings"
	"time"
)

// ExampleRun executes one of the repo's example programs to completion
// with the go tool (`go run repro/examples/<name>`), requiring exit 0
// and every Want marker on its output. The graph-side suites
// (triangle counting, connected components) verify themselves against
// an independent brute-force computation and print a stable
// "... verified OK" line — the scenario asserts that line at a
// declared scale, which is what makes these graph rows scale-N drills
// rather than fixed unit tests.
type ExampleRun struct {
	Name    string   // package name under examples/
	Args    []string // flags, e.g. "-nodes", "400"
	Want    []string // substrings the combined output must contain
	Timeout time.Duration
}

func (s ExampleRun) Describe() string {
	return fmt.Sprintf("run examples/%s %s", s.Name, strings.Join(s.Args, " "))
}

func (s ExampleRun) Run(c *Ctx) error {
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 3 * time.Minute
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	args := append([]string{"run", "repro/examples/" + s.Name}, s.Args...)
	out, err := exec.CommandContext(ctx, "go", args...).CombinedOutput()
	if err != nil {
		return fmt.Errorf("examples/%s: %v\n%s", s.Name, err, out)
	}
	for _, want := range s.Want {
		if !strings.Contains(string(out), want) {
			return fmt.Errorf("examples/%s output lacks %q:\n%s", s.Name, want, out)
		}
	}
	c.Logf("examples/%s: %d bytes of output, all markers present", s.Name, len(out))
	return nil
}
