package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// Key and Mark are row-template placeholders for Load: Key becomes the
// drawn (possibly hot) integer key, Mark the harness marker string, so
// one Load declaration works against any table schema.
var (
	Key  = keyCell{}
	Mark = markCell{}
)

type (
	keyCell  struct{}
	markCell struct{}
)

// Marker tags every row the harness writes, so count probes
// (`... WHERE col = scenario.Marker`) are independent of the base data
// a scale factor generated.
const Marker = "scen-marker"

// Load drives a concurrent write stream (plus optional reader traffic)
// against a named server. Keys are drawn uniformly or Zipf-skewed —
// the hot-key contention profile uniform TPC-H suites hide. Every
// acknowledged insert/delete lands in the server's ledger, so a later
// Query{WantLedger} asserts exactly what survived.
//
// With Background the stream runs while later steps execute (crash
// scenarios kill the server mid-write); AwaitLoad joins it.
// TolerateCrash downgrades connection-level failures to an end of
// stream — any HTTP response that is not a 200, crash or not, still
// fails the scenario.
type Load struct {
	Server        string
	Table         string        // target table
	Row           []any         // row template; Key/Mark placeholders substituted
	SQL           string        // reader probe; empty disables readers
	Writers       int           // concurrent writers (default 2)
	Readers       int           // concurrent readers (default 0)
	Duration      time.Duration // stream length (default 500ms)
	Zipf          float64       // key skew exponent (>1); 0 = uniform
	Keys          int           // key-space size (default 16)
	DeleteFrac    float64       // chance a writer follows up by deleting one of its rows
	Background    bool
	TolerateCrash bool
}

func (s Load) Describe() string {
	mode := "uniform"
	if s.Zipf > 0 {
		mode = fmt.Sprintf("zipf %.2f", s.Zipf)
	}
	return fmt.Sprintf("load %s %s w=%d r=%d %v keys=%d bg=%v", s.Table, mode,
		s.writers(), s.Readers, s.duration(), s.keys(), s.Background)
}

func (s Load) writers() int {
	if s.Writers <= 0 {
		return 2
	}
	return s.Writers
}

func (s Load) keys() int {
	if s.Keys <= 0 {
		return 16
	}
	return s.Keys
}

func (s Load) duration() time.Duration {
	if s.Duration <= 0 {
		return 500 * time.Millisecond
	}
	return s.Duration
}

// loadRun is one executing Load stream.
type loadRun struct {
	done     chan struct{}
	stopOnce sync.Once
	stopCh   chan struct{}
	acked    atomic.Int64 // successful write requests
	errMu    sync.Mutex
	err      error // first hard failure
}

func (lr *loadRun) stop() { lr.stopOnce.Do(func() { close(lr.stopCh) }) }

func (lr *loadRun) fail(err error) {
	lr.errMu.Lock()
	if lr.err == nil {
		lr.err = err
	}
	lr.errMu.Unlock()
	lr.stop()
}

func (s Load) Run(c *Ctx) error {
	name := orMain(s.Server)
	if _, err := c.proc(name); err != nil {
		return err
	}
	if prev, ok := c.loads[name]; ok {
		select {
		case <-prev.done:
		default:
			return fmt.Errorf("server %q already has a load stream; AwaitLoad it first", name)
		}
	}
	lr := &loadRun{done: make(chan struct{}), stopCh: make(chan struct{})}
	c.loads[name] = lr

	st := c.state(name)
	var wg sync.WaitGroup
	deadline := time.Now().Add(s.duration())
	for i := 0; i < s.writers(); i++ {
		wg.Add(1)
		go s.writerLoop(c, name, st, lr, i, deadline, &wg)
	}
	for i := 0; i < s.Readers; i++ {
		wg.Add(1)
		go s.readerLoop(c, name, lr, i, deadline, &wg)
	}
	go func() {
		wg.Wait()
		close(lr.done)
	}()

	if s.Background {
		return nil
	}
	return AwaitLoad{Server: name}.Run(c)
}

// rng builds a deterministic per-worker source so reruns draw the same
// key sequences.
func loadRNG(name string, worker int) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", name, worker)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

func (s Load) writerLoop(c *Ctx, name string, st *serverState, lr *loadRun, worker int, deadline time.Time, wg *sync.WaitGroup) {
	defer wg.Done()
	rng := loadRNG(name, worker)
	var zipf *rand.Zipf
	if s.Zipf > 0 {
		exp := s.Zipf
		if exp <= 1 {
			exp = 1.1 // rand.Zipf requires s > 1
		}
		zipf = rand.NewZipf(rng, exp, 1, uint64(s.keys()-1))
	}
	var owned []int64 // vertex ids this writer inserted and may delete
	for time.Now().Before(deadline) {
		select {
		case <-lr.stopCh:
			return
		default:
		}
		key := int64(rng.Intn(s.keys()))
		if zipf != nil {
			key = int64(zipf.Uint64())
		}
		row := make([]any, len(s.Row))
		for j, cell := range s.Row {
			switch cell.(type) {
			case keyCell:
				row[j] = key
			case markCell:
				row[j] = Marker
			default:
				row[j] = cell
			}
		}
		ids, ok := s.postWrite(c, name, lr, map[string]any{"table": s.Table, "insert": [][]any{row}}, st, 1)
		if !ok {
			return
		}
		owned = append(owned, ids...)
		if s.DeleteFrac > 0 && len(owned) > 0 && rng.Float64() < s.DeleteFrac {
			victim := rng.Intn(len(owned))
			id := owned[victim]
			owned = append(owned[:victim], owned[victim+1:]...)
			if _, ok := s.postWrite(c, name, lr, map[string]any{"delete": []int64{id}}, st, -1); !ok {
				return
			}
		}
	}
}

// postWrite sends one /write and books the ack. Returns ok=false when
// the stream should end (stop signal, crash under TolerateCrash, or a
// hard failure, which it records).
func (s Load) postWrite(c *Ctx, name string, lr *loadRun, payload map[string]any, st *serverState, ledgerDelta int64) ([]int64, bool) {
	body, err := json.Marshal(payload)
	if err != nil {
		lr.fail(err)
		return nil, false
	}
	status, _, out, err := c.do(name, http.MethodPost, "/write", body)
	if err != nil {
		if s.TolerateCrash {
			return nil, false // the crash the scenario is about
		}
		lr.fail(fmt.Errorf("writer: %w", err))
		return nil, false
	}
	if status != http.StatusOK {
		lr.fail(fmt.Errorf("writer: /write status %d: %s", status, out))
		return nil, false
	}
	var resp struct {
		Epoch    uint64  `json:"epoch"`
		Inserted []int64 `json:"inserted"`
	}
	if err := json.Unmarshal(out, &resp); err != nil {
		lr.fail(fmt.Errorf("writer: /write response: %w", err))
		return nil, false
	}
	st.ack(resp.Epoch, ledgerDelta)
	lr.acked.Add(1)
	return resp.Inserted, true
}

func (s Load) readerLoop(c *Ctx, name string, lr *loadRun, worker int, deadline time.Time, wg *sync.WaitGroup) {
	defer wg.Done()
	path := "/query?sql=" + url.QueryEscape(s.SQL)
	for time.Now().Before(deadline) {
		select {
		case <-lr.stopCh:
			return
		default:
		}
		status, _, out, err := c.do(name, http.MethodGet, path, nil)
		if err != nil {
			if s.TolerateCrash {
				return
			}
			lr.fail(fmt.Errorf("reader: %w", err))
			return
		}
		if status != http.StatusOK {
			lr.fail(fmt.Errorf("reader: /query status %d: %s", status, out))
			return
		}
		_ = out
	}
}

// AwaitLoad joins a (background) Load stream and fails the scenario on
// any hard error it hit — or if it never acknowledged a single write,
// which would make every downstream "survived the load" assertion
// vacuous.
type AwaitLoad struct{ Server string }

func (s AwaitLoad) Describe() string { return "await load on " + orMain(s.Server) }

func (s AwaitLoad) Run(c *Ctx) error {
	name := orMain(s.Server)
	lr, ok := c.loads[name]
	if !ok {
		return errors.New("no load stream to await")
	}
	select {
	case <-lr.done:
	case <-time.After(startTimeout):
		lr.stop()
		<-lr.done
		return fmt.Errorf("load on %q did not finish within %v", name, startTimeout)
	}
	lr.errMu.Lock()
	err := lr.err
	lr.errMu.Unlock()
	if err != nil {
		return err
	}
	if lr.acked.Load() == 0 {
		return errors.New("load stream acknowledged zero writes")
	}
	c.Logf("load on %s: %d writes acked", name, lr.acked.Load())
	return nil
}
