package cluster

import (
	"testing"

	"repro/internal/tpch"
)

func TestClusterTrafficAccounting(t *testing.T) {
	cat := tpch.Generate(0.3, 9)
	c, err := New(cat, 6)
	if err != nil {
		t.Fatal(err)
	}
	q := tpch.ByID("q3")
	tagRes, shfRes, err := c.Compare(q.ID, q.SQL)
	if err != nil {
		t.Fatal(err)
	}
	if tagRes.NetworkBytes == 0 {
		t.Error("TAG run on 6 machines should incur network traffic")
	}
	if shfRes.NetworkBytes == 0 {
		t.Error("shuffle run should incur network traffic")
	}
	if tagRes.Rows != shfRes.Rows {
		t.Errorf("row counts differ: %d vs %d", tagRes.Rows, shfRes.Rows)
	}
}

func TestSingleMachineNoTraffic(t *testing.T) {
	cat := tpch.Generate(0.3, 9)
	c, err := New(cat, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunTAG("q6", tpch.ByID("q6").SQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.NetworkBytes != 0 {
		t.Errorf("single machine should have zero network traffic, got %d", res.NetworkBytes)
	}
}

func TestBadMachineCount(t *testing.T) {
	if _, err := New(tpch.Generate(0.2, 1), 0); err == nil {
		t.Error("0 machines should error")
	}
}

func TestWorkloadOnCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster workload in -short mode")
	}
	cat := tpch.Generate(0.3, 9)
	c, err := New(cat, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"q1", "q4", "q5", "q10", "q14"} {
		q := tpch.ByID(id)
		if _, _, err := c.Compare(q.ID, q.SQL); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}
