// Package cluster simulates the distributed experiments of §8.6: the
// same TAG-join programs run over a TAG graph whose vertices are hash-
// partitioned across N simulated machines, with every message that
// crosses a partition boundary counted as network traffic; the Spark SQL
// stand-in executes the same queries with shuffle/broadcast joins whose
// exchanged bytes are counted the same way. This regenerates Figure 16's
// runtime and network-traffic comparison and Tables 16-17.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tag"
)

// Result is one query execution on the simulated cluster.
type Result struct {
	Engine          string
	QueryID         string
	Elapsed         time.Duration
	Rows            int
	NetworkBytes    int64
	NetworkMessages int64
}

// Cluster is a fixed catalog partitioned over Machines workers.
type Cluster struct {
	Machines int
	Cat      *relation.Catalog
	TAG      *tag.Graph
	ex       *core.Executor
}

// New builds the TAG encoding and prepares both engines.
func New(cat *relation.Catalog, machines int) (*Cluster, error) {
	if machines < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 machine")
	}
	g, err := tag.Build(cat, nil)
	if err != nil {
		return nil, err
	}
	c := &Cluster{Machines: machines, Cat: cat, TAG: g}
	c.ex = core.NewExecutor(g, bsp.Options{
		Partitions: machines,
		// TigerGraph-style automatic partitioning: hash by vertex id.
		PartitionOf: func(v bsp.VertexID) int { return int(v) % machines },
	})
	return c, nil
}

// RunTAG executes a query with the TAG-join executor, attributing
// cross-partition messages to the network.
func (c *Cluster) RunTAG(id, query string) (Result, error) {
	c.ex.ResetStats()
	start := time.Now()
	out, err := c.ex.Query(query)
	if err != nil {
		return Result{}, fmt.Errorf("cluster: tag %s: %w", id, err)
	}
	st := c.ex.Stats()
	return Result{
		Engine: "tag", QueryID: id, Elapsed: time.Since(start),
		Rows: out.Len(), NetworkBytes: st.NetworkBytes, NetworkMessages: st.NetworkMessages,
	}, nil
}

// RunShuffle executes a query with the Spark-SQL-like shuffle engine.
func (c *Cluster) RunShuffle(id, query string) (Result, error) {
	eng := baseline.NewShuffle(c.Cat, c.Machines)
	start := time.Now()
	out, err := eng.Query(query)
	if err != nil {
		return Result{}, fmt.Errorf("cluster: shuffle %s: %w", id, err)
	}
	return Result{
		Engine: "shuffle", QueryID: id, Elapsed: time.Since(start),
		Rows: out.Len(), NetworkBytes: eng.Stats.NetworkBytes(),
		NetworkMessages: eng.Stats.ShuffledRows + eng.Stats.BroadcastRows,
	}, nil
}

// Compare runs a query on both engines and checks that they agree.
func (c *Cluster) Compare(id, query string) (tagRes, shfRes Result, err error) {
	tagRes, err = c.RunTAG(id, query)
	if err != nil {
		return
	}
	shfRes, err = c.RunShuffle(id, query)
	if err != nil {
		return
	}
	tagOut, _ := c.ex.Query(query)
	shfOut, _ := baseline.NewShuffle(c.Cat, c.Machines).Query(query)
	if !relation.EqualMultisetFuzzy(tagOut, shfOut) {
		err = fmt.Errorf("cluster: %s: engines disagree (%d vs %d rows)", id, tagOut.Len(), shfOut.Len())
	}
	return
}
