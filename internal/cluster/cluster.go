// Package cluster runs the distributed experiments of §8.6 over the
// loopback transport: the same TAG-join programs run over a TAG graph
// whose vertices are hash-partitioned across N machines, with every
// sealed cross-partition frame priced as network traffic; the Spark SQL
// stand-in executes the same queries with shuffle/broadcast joins whose
// exchanged bytes are counted the same way. This regenerates Figure 16's
// runtime and network-traffic comparison and Tables 16-17.
//
// "Loopback" is the single-process end of the bsp.Transport seam — the
// frames are built, encoded and priced exactly as internal/dist puts
// them on real sockets (the dist tests assert the byte counts are
// equal), but delivery stays in memory. The partition function here,
// int(v) % machines, is the same one dist topologies use, so a
// machine count means the same thing on both paths.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tag"
)

// Result is one query execution on the simulated cluster.
type Result struct {
	Engine          string
	QueryID         string
	Elapsed         time.Duration
	Rows            int
	NetworkBytes    int64
	NetworkMessages int64
}

// Cluster is a fixed catalog partitioned over Machines workers.
type Cluster struct {
	Machines int
	Cat      *relation.Catalog
	TAG      *tag.Graph
	ex       *core.Executor
	shf      *baseline.Engine
}

// New builds the TAG encoding and prepares both engines.
func New(cat *relation.Catalog, machines int) (*Cluster, error) {
	if machines < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 machine")
	}
	g, err := tag.Build(cat, nil)
	if err != nil {
		return nil, err
	}
	c := &Cluster{Machines: machines, Cat: cat, TAG: g}
	c.ex = core.NewExecutor(g, bsp.Options{
		Partitions: machines,
		// TigerGraph-style automatic partitioning: hash by vertex id.
		PartitionOf: func(v bsp.VertexID) int { return int(v) % machines },
	})
	c.shf = baseline.NewShuffle(cat, machines)
	return c, nil
}

// RunTAG executes a query with the TAG-join executor, attributing
// cross-partition messages to the network.
func (c *Cluster) RunTAG(id, query string) (Result, error) {
	c.ex.ResetStats()
	start := time.Now()
	out, err := c.ex.Query(query)
	if err != nil {
		return Result{}, fmt.Errorf("cluster: tag %s: %w", id, err)
	}
	st := c.ex.Stats()
	return Result{
		Engine: "tag", QueryID: id, Elapsed: time.Since(start),
		Rows: out.Len(), NetworkBytes: st.NetworkBytes, NetworkMessages: st.NetworkMessages,
	}, nil
}

// RunShuffle executes a query with the Spark-SQL-like shuffle engine.
func (c *Cluster) RunShuffle(id, query string) (Result, error) {
	c.shf.Stats = baseline.ExecStats{}
	start := time.Now()
	out, err := c.shf.Query(query)
	if err != nil {
		return Result{}, fmt.Errorf("cluster: shuffle %s: %w", id, err)
	}
	return Result{
		Engine: "shuffle", QueryID: id, Elapsed: time.Since(start),
		Rows: out.Len(), NetworkBytes: c.shf.Stats.NetworkBytes(),
		NetworkMessages: c.shf.Stats.ShuffledRows + c.shf.Stats.BroadcastRows,
	}, nil
}

// Compare runs a query on both engines and checks that they agree.
func (c *Cluster) Compare(id, query string) (tagRes, shfRes Result, err error) {
	tagRes, err = c.RunTAG(id, query)
	if err != nil {
		return
	}
	shfRes, err = c.RunShuffle(id, query)
	if err != nil {
		return
	}
	tagOut, _ := c.ex.Query(query)
	shfOut, _ := c.shf.Query(query)
	if !relation.EqualMultisetFuzzy(tagOut, shfOut) {
		err = fmt.Errorf("cluster: %s: engines disagree (%d vs %d rows)", id, tagOut.Len(), shfOut.Len())
	}
	return
}
