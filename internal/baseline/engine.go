// Package baseline implements the relational comparison engines of the
// reproduction: a single-node iterator-style SQL engine standing in for
// the paper's reference RDBMSs (PostgreSQL, RDBMS-X, RDBMS-Y), an optional
// column-store scan path standing in for RDBMS-X's In-Memory column store,
// and a partitioned shuffle-join configuration standing in for Spark SQL,
// with byte-level shuffle-traffic accounting (Figure 16).
//
// The engine evaluates the same analyzed SQL as the TAG-join executor and
// is used as the correctness oracle in integration tests.
package baseline

import (
	"fmt"
	"strings"

	"repro/internal/relation"
	"repro/internal/sql"
)

// ShuffleConfig turns the engine into a Spark-SQL-like distributed
// executor: every hash join re-partitions both inputs across Partitions
// workers (counting moved bytes), unless one side is below
// BroadcastThreshold rows, in which case it is broadcast to every
// partition (counting size × partitions bytes).
type ShuffleConfig struct {
	Partitions         int
	BroadcastThreshold int
}

// ExecStats accumulates execution counters across queries.
type ExecStats struct {
	HashJoins      int
	NestedLoops    int
	RowsScanned    int64
	ShuffledRows   int64
	ShuffledBytes  int64
	BroadcastRows  int64
	BroadcastBytes int64
}

// NetworkBytes returns the total simulated network traffic.
func (s ExecStats) NetworkBytes() int64 { return s.ShuffledBytes + s.BroadcastBytes }

// Engine executes SQL over a catalog.
type Engine struct {
	Cat *relation.Catalog
	// ColumnStore enables column-at-a-time scan filtering (the RDBMS-X IM
	// stand-in).
	ColumnStore bool
	// Shuffle, when non-nil, makes joins shuffle/broadcast like Spark SQL.
	Shuffle *ShuffleConfig

	Stats ExecStats

	subCache map[*sql.Select]*relation.Relation
}

// New returns a row-store engine over cat.
func New(cat *relation.Catalog) *Engine { return &Engine{Cat: cat} }

// NewColumnStore returns a column-scan engine over cat.
func NewColumnStore(cat *relation.Catalog) *Engine {
	return &Engine{Cat: cat, ColumnStore: true}
}

// NewShuffle returns a Spark-SQL-like shuffle engine. The broadcast
// threshold mirrors Spark's 10MB default scaled to this reproduction's
// miniature data sizes (roughly 0.01% of the working set, so only the
// small dimension tables broadcast, as at the paper's SF-75).
func NewShuffle(cat *relation.Catalog, partitions int) *Engine {
	return &Engine{Cat: cat, Shuffle: &ShuffleConfig{Partitions: partitions, BroadcastThreshold: 32}}
}

// Query parses, analyzes and executes a SQL string.
func (e *Engine) Query(query string) (*relation.Relation, error) {
	an, err := sql.AnalyzeString(e.Cat, query)
	if err != nil {
		return nil, err
	}
	return e.Run(an)
}

// Run executes an analyzed query.
func (e *Engine) Run(an *sql.Analysis) (*relation.Relation, error) {
	e.subCache = make(map[*sql.Select]*relation.Relation)
	out, err := e.runChain(an, an.Root, nil)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runChain executes a block and its UNION ALL continuation.
func (e *Engine) runChain(an *sql.Analysis, blk *sql.Analyzed, outer *sql.Env) (*relation.Relation, error) {
	out, err := e.runBlock(an, blk, outer)
	if err != nil {
		return nil, err
	}
	for next := blk.UnionNext; next != nil; next = next.UnionNext {
		arm, err := e.runBlock(an, next, outer)
		if err != nil {
			return nil, err
		}
		out.Tuples = append(out.Tuples, arm.Tuples...)
	}
	return out, nil
}

// subqueryFn builds the evaluator callback for blocks nested in blk.
func (e *Engine) subqueryFn(an *sql.Analysis) sql.SubqueryFn {
	var fn sql.SubqueryFn
	fn = func(sub *sql.Select, env *sql.Env) (*relation.Relation, error) {
		blk := an.Blocks[sub]
		if blk == nil {
			return nil, fmt.Errorf("baseline: unanalyzed subquery")
		}
		correlated := blockIsCorrelated(an, blk)
		if !correlated {
			if cached, ok := e.subCache[sub]; ok {
				return cached, nil
			}
		}
		out, err := e.runChain(an, blk, env)
		if err != nil {
			return nil, err
		}
		if !correlated {
			e.subCache[sub] = out
		}
		return out, nil
	}
	return fn
}

// blockIsCorrelated and aliasesOf are provided by the sql package and
// shared with the TAG-join executor.
func blockIsCorrelated(an *sql.Analysis, blk *sql.Analyzed) bool {
	return sql.BlockIsCorrelated(an, blk)
}

func aliasesOf(an *sql.Analysis, e sql.Expr, offset int) map[string]bool {
	return sql.AliasesOf(an, e, offset)
}

// joinKey renders a composite hash key for join/group columns using
// canonical value identity.
func joinKey(vals []relation.Value) string {
	var b strings.Builder
	for i, v := range vals {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		k := v.Key()
		b.WriteByte(byte(k.Kind) + '0')
		b.WriteString(k.String())
	}
	return b.String()
}
