package baseline

import (
	"fmt"
	"testing"

	"repro/internal/relation"
)

// shopCatalog is a small hand-checkable database.
func shopCatalog() *relation.Catalog {
	cat := relation.NewCatalog()

	nation := relation.New("nation", relation.MustSchema(
		relation.Col("nkey", relation.KindInt),
		relation.Col("nname", relation.KindString)))
	nation.MustAppend(relation.Int(1), relation.Str("USA"))
	nation.MustAppend(relation.Int(2), relation.Str("FRANCE"))
	nation.MustAppend(relation.Int(3), relation.Str("PERU"))
	cat.MustAdd(nation)
	cat.SetPrimaryKey("nation", "nkey")

	cust := relation.New("cust", relation.MustSchema(
		relation.Col("ckey", relation.KindInt),
		relation.Col("cnation", relation.KindInt),
		relation.Col("cname", relation.KindString)))
	cust.MustAppend(relation.Int(10), relation.Int(1), relation.Str("alice"))
	cust.MustAppend(relation.Int(20), relation.Int(1), relation.Str("bob"))
	cust.MustAppend(relation.Int(30), relation.Int(2), relation.Str("chloe"))
	cust.MustAppend(relation.Int(40), relation.Null, relation.Str("drift")) // dangling
	cat.MustAdd(cust)
	cat.SetPrimaryKey("cust", "ckey")
	cat.AddForeignKey(relation.ForeignKey{Table: "cust", Column: "cnation", RefTable: "nation", RefColumn: "nkey"})

	ord := relation.New("ord", relation.MustSchema(
		relation.Col("okey", relation.KindInt),
		relation.Col("ocust", relation.KindInt),
		relation.Col("price", relation.KindInt)))
	ord.MustAppend(relation.Int(100), relation.Int(10), relation.Int(5))
	ord.MustAppend(relation.Int(101), relation.Int(10), relation.Int(7))
	ord.MustAppend(relation.Int(102), relation.Int(20), relation.Int(11))
	ord.MustAppend(relation.Int(103), relation.Int(30), relation.Int(2))
	ord.MustAppend(relation.Int(104), relation.Int(99), relation.Int(50)) // dangling
	cat.MustAdd(ord)
	cat.SetPrimaryKey("ord", "okey")
	cat.AddForeignKey(relation.ForeignKey{Table: "ord", Column: "ocust", RefTable: "cust", RefColumn: "ckey"})

	return cat
}

// queryRows runs a query and returns sorted canonical row keys.
func queryRows(t *testing.T, e *Engine, q string) []string {
	t.Helper()
	r, err := e.Query(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return r.SortedKeys()
}

func TestSimpleFilterProjection(t *testing.T) {
	e := New(shopCatalog())
	r, err := e.Query("SELECT cname FROM cust WHERE ckey > 15")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Errorf("rows = %d, want 3\n%v", r.Len(), r)
	}
}

func TestTwoWayJoin(t *testing.T) {
	e := New(shopCatalog())
	r, err := e.Query("SELECT cname, nname FROM cust, nation WHERE cnation = nkey")
	if err != nil {
		t.Fatal(err)
	}
	// alice-USA, bob-USA, chloe-FRANCE; drift has NULL nation.
	if r.Len() != 3 {
		t.Errorf("rows = %d, want 3\n%v", r.Len(), r)
	}
}

func TestThreeWayJoinWithFilter(t *testing.T) {
	e := New(shopCatalog())
	r, err := e.Query(`SELECT nname, price FROM nation, cust, ord
		WHERE cnation = nkey AND ocust = ckey AND price > 4`)
	if err != nil {
		t.Fatal(err)
	}
	// orders 100(5,alice,USA) 101(7,alice,USA) 102(11,bob,USA); 103 price 2; 104 dangling
	if r.Len() != 3 {
		t.Errorf("rows = %d, want 3\n%v", r.Len(), r)
	}
}

func TestGroupByHaving(t *testing.T) {
	e := New(shopCatalog())
	r, err := e.Query(`SELECT ocust, SUM(price) AS total, COUNT(*) AS n FROM ord
		GROUP BY ocust HAVING SUM(price) > 5`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"110\x1f112\x1f12": true, "120\x1f111\x1f11": true, "199\x1f150\x1f11": true}
	if r.Len() != len(want) {
		t.Fatalf("rows = %d, want %d\n%v", r.Len(), len(want), r)
	}
	for _, k := range r.SortedKeys() {
		if !want[k] {
			t.Errorf("unexpected row %q", k)
		}
	}
}

func TestScalarAggregateEmptyInput(t *testing.T) {
	e := New(shopCatalog())
	r, err := e.Query("SELECT COUNT(*), SUM(price) FROM ord WHERE price > 1000")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("scalar agg must yield one row, got %d", r.Len())
	}
	if r.Tuples[0][0] != relation.Int(0) || !r.Tuples[0][1].IsNull() {
		t.Errorf("row = %v, want (0, NULL)", r.Tuples[0])
	}
}

func TestDistinct(t *testing.T) {
	e := New(shopCatalog())
	r, err := e.Query("SELECT DISTINCT cnation FROM cust WHERE cnation IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Errorf("distinct rows = %d, want 2", r.Len())
	}
}

func TestLeftOuterJoin(t *testing.T) {
	e := New(shopCatalog())
	r, err := e.Query("SELECT cname, nname FROM cust LEFT JOIN nation ON cnation = nkey")
	if err != nil {
		t.Fatal(err)
	}
	// All 4 customers; drift gets NULL nation.
	if r.Len() != 4 {
		t.Fatalf("rows = %d, want 4\n%v", r.Len(), r)
	}
	hasNull := false
	for _, tp := range r.Tuples {
		if tp[1].IsNull() {
			hasNull = true
		}
	}
	if !hasNull {
		t.Error("expected a NULL-extended row")
	}
}

func TestRightAndFullOuterJoin(t *testing.T) {
	e := New(shopCatalog())
	// RIGHT: every nation appears; PERU has no customers.
	r, err := e.Query("SELECT cname, nname FROM cust RIGHT JOIN nation ON cnation = nkey")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 4 { // 3 matches + PERU
		t.Fatalf("right join rows = %d, want 4\n%v", r.Len(), r)
	}
	// FULL: matches + drift + PERU.
	r, err = e.Query("SELECT cname, nname FROM cust FULL JOIN nation ON cnation = nkey")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 5 {
		t.Fatalf("full join rows = %d, want 5\n%v", r.Len(), r)
	}
}

func TestCorrelatedExists(t *testing.T) {
	e := New(shopCatalog())
	r, err := e.Query(`SELECT cname FROM cust
		WHERE EXISTS (SELECT 1 FROM ord WHERE ocust = ckey AND price > 10)`)
	if err != nil {
		t.Fatal(err)
	}
	// Only bob has an order > 10.
	if r.Len() != 1 || r.Tuples[0][0] != relation.Str("bob") {
		t.Errorf("rows = %v", r)
	}
}

func TestNotExistsAntiJoin(t *testing.T) {
	e := New(shopCatalog())
	r, err := e.Query(`SELECT cname FROM cust
		WHERE NOT EXISTS (SELECT 1 FROM ord WHERE ocust = ckey)`)
	if err != nil {
		t.Fatal(err)
	}
	// drift has no orders.
	if r.Len() != 1 || r.Tuples[0][0] != relation.Str("drift") {
		t.Errorf("rows = %v", r)
	}
}

func TestInSubquery(t *testing.T) {
	e := New(shopCatalog())
	r, err := e.Query("SELECT okey FROM ord WHERE ocust IN (SELECT ckey FROM cust WHERE cnation = 1)")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 { // orders of alice and bob
		t.Errorf("rows = %d, want 3\n%v", r.Len(), r)
	}
}

func TestScalarSubqueryComparison(t *testing.T) {
	e := New(shopCatalog())
	r, err := e.Query("SELECT okey FROM ord WHERE price > (SELECT AVG(price) FROM ord)")
	if err != nil {
		t.Fatal(err)
	}
	// avg = 15; only order 104 (50) exceeds it.
	if r.Len() != 1 || r.Tuples[0][0] != relation.Int(104) {
		t.Errorf("rows = %v", r)
	}
}

func TestCorrelatedScalarSubquery(t *testing.T) {
	e := New(shopCatalog())
	r, err := e.Query(`SELECT okey FROM ord o
		WHERE price > (SELECT 2 * AVG(price) FROM ord i WHERE i.ocust = o.ocust)`)
	if err != nil {
		t.Fatal(err)
	}
	// alice's orders: 5,7 avg 6 → need >12: none. others single orders: price = avg → need >2*price: none.
	if r.Len() != 0 {
		t.Errorf("rows = %v", r)
	}
}

func TestUnionAll(t *testing.T) {
	e := New(shopCatalog())
	r, err := e.Query("SELECT ckey FROM cust UNION ALL SELECT okey FROM ord")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 9 {
		t.Errorf("rows = %d, want 9", r.Len())
	}
}

func TestCrossJoinWithResidual(t *testing.T) {
	e := New(shopCatalog())
	// Non-equi theta join forces cross product + residual filter.
	r, err := e.Query("SELECT n1.nname, n2.nname FROM nation n1, nation n2 WHERE n1.nkey < n2.nkey")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Errorf("rows = %d, want 3", r.Len())
	}
	if e.Stats.NestedLoops == 0 {
		t.Error("expected a nested-loop join")
	}
}

func TestCaseExpression(t *testing.T) {
	e := New(shopCatalog())
	r, err := e.Query(`SELECT SUM(CASE WHEN price > 10 THEN 1 ELSE 0 END) FROM ord`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tuples[0][0] != relation.Int(2) {
		t.Errorf("conditional count = %v, want 2", r.Tuples[0][0])
	}
}

func TestEnginesAgree(t *testing.T) {
	queries := []string{
		"SELECT cname, nname FROM cust, nation WHERE cnation = nkey",
		"SELECT ocust, SUM(price) FROM ord GROUP BY ocust",
		"SELECT nname, COUNT(*) FROM nation, cust, ord WHERE cnation = nkey AND ocust = ckey GROUP BY nname",
		"SELECT cname FROM cust WHERE EXISTS (SELECT 1 FROM ord WHERE ocust = ckey)",
		"SELECT okey FROM ord WHERE price BETWEEN 5 AND 11 AND okey IN (100, 101, 102, 104)",
		"SELECT cname FROM cust WHERE cname LIKE '%o%'",
	}
	cat := shopCatalog()
	row := New(cat)
	col := NewColumnStore(cat)
	shf := NewShuffle(cat, 6)
	for _, q := range queries {
		a := queryRows(t, row, q)
		b := queryRows(t, col, q)
		c := queryRows(t, shf, q)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Errorf("column store disagrees on %q:\nrow: %v\ncol: %v", q, a, b)
		}
		if fmt.Sprint(a) != fmt.Sprint(c) {
			t.Errorf("shuffle engine disagrees on %q:\nrow: %v\nshf: %v", q, a, c)
		}
	}
}

func TestShuffleAccounting(t *testing.T) {
	e := NewShuffle(shopCatalog(), 4)
	e.Shuffle.BroadcastThreshold = 0 // force shuffling
	if _, err := e.Query("SELECT cname, nname FROM cust, nation WHERE cnation = nkey"); err != nil {
		t.Fatal(err)
	}
	if e.Stats.ShuffledBytes == 0 {
		t.Error("shuffle join should move bytes")
	}
	e2 := NewShuffle(shopCatalog(), 4) // default threshold: broadcast
	if _, err := e2.Query("SELECT cname, nname FROM cust, nation WHERE cnation = nkey"); err != nil {
		t.Fatal(err)
	}
	if e2.Stats.BroadcastBytes == 0 {
		t.Error("small build side should broadcast")
	}
	if e2.Stats.NetworkBytes() != e2.Stats.BroadcastBytes {
		t.Error("NetworkBytes should include broadcast traffic")
	}
}

func TestIndexAndColumnStoreBytes(t *testing.T) {
	cat := shopCatalog()
	if IndexBytes(cat) <= 0 {
		t.Error("index bytes should be positive with PKs declared")
	}
	if ColumnStoreBytes(cat) <= 0 {
		t.Error("column store bytes should be positive")
	}
	raw := cat.TotalBytes()
	if ColumnStoreBytes(cat) >= raw*3 {
		t.Errorf("column store should be compact: %d vs raw %d", ColumnStoreBytes(cat), raw)
	}
}

func TestAggregateInExpression(t *testing.T) {
	e := New(shopCatalog())
	r, err := e.Query("SELECT SUM(price) / COUNT(*) FROM ord")
	if err != nil {
		t.Fatal(err)
	}
	if r.Tuples[0][0] != relation.Float(15) {
		t.Errorf("avg via expr = %v", r.Tuples[0][0])
	}
}

func TestGroupByExpression(t *testing.T) {
	e := New(shopCatalog())
	r, err := e.Query("SELECT price / 10, COUNT(*) FROM ord GROUP BY price / 10")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() == 0 {
		t.Error("expected groups")
	}
}
