package baseline

import (
	"repro/internal/relation"
	"repro/internal/sql"
)

// columnScan is the RDBMS-X In-Memory stand-in: simple predicates over a
// single column are evaluated column-at-a-time into a selection bitmap
// before any row is materialized, accelerating scan-heavy filters
// (§8.1.3, §8.3). Predicates it cannot vectorize are returned for row-wise
// evaluation on the survivors.
func (e *Engine) columnScan(rel *relation.Relation, bt sql.BoundTable, preds []sql.Expr,
	binding sql.Binding, outer *sql.Env, subq sql.SubqueryFn) ([]relation.Tuple, []sql.Expr, error) {

	var vectorized []func(relation.Value) bool
	var colIdx []int
	var rest []sql.Expr
	for _, p := range preds {
		slot, fn := vectorizePred(p, rel.Schema)
		if fn == nil {
			rest = append(rest, p)
			continue
		}
		vectorized = append(vectorized, fn)
		colIdx = append(colIdx, slot)
	}
	if len(vectorized) == 0 {
		return rel.Tuples, rest, nil
	}

	// Selection bitmap, one predicate (column) at a time.
	sel := make([]bool, len(rel.Tuples))
	for i := range sel {
		sel[i] = true
	}
	for k, fn := range vectorized {
		c := colIdx[k]
		for i, row := range rel.Tuples {
			if sel[i] && !fn(row[c]) {
				sel[i] = false
			}
		}
	}
	var rows []relation.Tuple
	for i, keep := range sel {
		if keep {
			rows = append(rows, rel.Tuples[i])
		}
	}
	return rows, rest, nil
}

// vectorizePred recognizes col-vs-constant predicates: comparisons,
// BETWEEN with literal bounds, IN over literals, LIKE, IS [NOT] NULL.
// It returns the column slot and a per-value test, or nil.
func vectorizePred(p sql.Expr, schema *relation.Schema) (int, func(relation.Value) bool) {
	colSlot := func(x sql.Expr) (int, bool) {
		c, ok := x.(*sql.ColRef)
		if !ok || c.Depth != 0 {
			return 0, false
		}
		i := schema.Index(c.Column)
		return i, i >= 0
	}
	lit := func(x sql.Expr) (relation.Value, bool) {
		l, ok := x.(*sql.Literal)
		if !ok {
			return relation.Null, false
		}
		return l.Val, true
	}

	switch x := p.(type) {
	case *sql.Binary:
		slot, ok := colSlot(x.L)
		if !ok {
			return 0, nil
		}
		c, ok := lit(x.R)
		if !ok {
			return 0, nil
		}
		op := x.Op
		return slot, func(v relation.Value) bool {
			if v.IsNull() {
				return false
			}
			cmp := v.Compare(c)
			switch op {
			case "=":
				return cmp == 0
			case "<>":
				return cmp != 0
			case "<":
				return cmp < 0
			case "<=":
				return cmp <= 0
			case ">":
				return cmp > 0
			case ">=":
				return cmp >= 0
			}
			return false
		}
	case *sql.Between:
		slot, ok := colSlot(x.X)
		if !ok {
			return 0, nil
		}
		lo, ok1 := lit(x.Lo)
		hi, ok2 := lit(x.Hi)
		if !ok1 || !ok2 {
			return 0, nil
		}
		not := x.Not
		return slot, func(v relation.Value) bool {
			if v.IsNull() {
				return false
			}
			in := v.Compare(lo) >= 0 && v.Compare(hi) <= 0
			return in != not
		}
	case *sql.InList:
		slot, ok := colSlot(x.X)
		if !ok {
			return 0, nil
		}
		set := make(map[relation.Value]struct{}, len(x.List))
		for _, item := range x.List {
			v, ok := lit(item)
			if !ok {
				return 0, nil
			}
			set[v.Key()] = struct{}{}
		}
		not := x.Not
		return slot, func(v relation.Value) bool {
			if v.IsNull() {
				return false
			}
			_, in := set[v.Key()]
			return in != not
		}
	case *sql.Like:
		slot, ok := colSlot(x.X)
		if !ok {
			return 0, nil
		}
		pat, not := x.Pattern, x.Not
		return slot, func(v relation.Value) bool {
			if v.IsNull() {
				return false
			}
			return sql.MatchLike(v.String(), pat) != not
		}
	case *sql.IsNull:
		slot, ok := colSlot(x.X)
		if !ok {
			return 0, nil
		}
		not := x.Not
		return slot, func(v relation.Value) bool {
			return v.IsNull() != not
		}
	}
	return 0, nil
}

// IndexBytes estimates the footprint of B-tree PK and FK indexes over the
// catalog, as the TPC protocol prescribes for RDBMSs (§8.2, Figure 14):
// roughly one (key, row-pointer) entry per tuple per index with B-tree
// fill overhead.
func IndexBytes(cat *relation.Catalog) int {
	const entryOverhead = 16 // pointer + page slot
	const fill = 1.45        // B-tree occupancy overhead

	total := 0.0
	addIndex := func(table, column string) {
		rel := cat.Get(table)
		if rel == nil {
			return
		}
		i := rel.Schema.Index(column)
		if i < 0 {
			return
		}
		for _, t := range rel.Tuples {
			total += float64(t[i].Size()+entryOverhead) * fill
		}
	}
	for _, name := range cat.Names() {
		if pk := cat.PrimaryKey(name); pk != "" {
			addIndex(name, pk)
		}
	}
	for _, fk := range cat.ForeignKeys() {
		addIndex(fk.Table, fk.Column)
	}
	return int(total)
}

// ColumnStoreBytes estimates the in-memory columnar footprint (Table 15):
// per-column storage with dictionary compression for strings (each
// distinct string stored once plus a 4-byte code per row) and raw 8-byte
// words for numerics.
func ColumnStoreBytes(cat *relation.Catalog) int {
	total := 0
	for _, name := range cat.Names() {
		rel := cat.Get(name)
		for ci, col := range rel.Schema.Columns {
			switch col.Kind {
			case relation.KindString:
				dict := map[string]struct{}{}
				for _, t := range rel.Tuples {
					if !t[ci].IsNull() {
						dict[t[ci].S] = struct{}{}
					}
				}
				for s := range dict {
					total += len(s)
				}
				total += 4 * rel.Len()
			default:
				total += 8 * rel.Len()
			}
		}
	}
	return total
}
