package baseline

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/sql"
)

// vectorizable predicates must behave identically on both scan paths.
func TestColumnScanMatchesRowScan(t *testing.T) {
	cat := shopCatalog()
	queries := []string{
		"SELECT okey FROM ord WHERE price = 5",
		"SELECT okey FROM ord WHERE price <> 5",
		"SELECT okey FROM ord WHERE price < 7",
		"SELECT okey FROM ord WHERE price <= 7",
		"SELECT okey FROM ord WHERE price > 7",
		"SELECT okey FROM ord WHERE price >= 7",
		"SELECT okey FROM ord WHERE price BETWEEN 5 AND 11",
		"SELECT okey FROM ord WHERE price NOT BETWEEN 5 AND 11",
		"SELECT okey FROM ord WHERE okey IN (100, 103, 999)",
		"SELECT okey FROM ord WHERE okey NOT IN (100, 103)",
		"SELECT cname FROM cust WHERE cname LIKE '%o%'",
		"SELECT cname FROM cust WHERE cname NOT LIKE 'a%'",
		"SELECT cname FROM cust WHERE cnation IS NULL",
		"SELECT cname FROM cust WHERE cnation IS NOT NULL",
		// Mixed: one vectorizable + one row-wise (expression) predicate.
		"SELECT okey FROM ord WHERE price > 4 AND price * 2 < 23",
	}
	row := New(cat)
	col := NewColumnStore(cat)
	for _, q := range queries {
		a, err := row.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		b, err := col.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !relation.EqualMultiset(a, b) {
			t.Errorf("scan paths disagree on %q: %d vs %d rows", q, a.Len(), b.Len())
		}
	}
}

func TestVectorizePredRejectsNonConstant(t *testing.T) {
	cat := shopCatalog()
	rel := cat.Get("ord")
	an, err := sql.AnalyzeString(cat, "SELECT okey FROM ord WHERE price > okey AND price > 5")
	if err != nil {
		t.Fatal(err)
	}
	conjs := sql.SplitConjuncts(an.Root.Sel.Where)
	if _, fn := vectorizePred(conjs[0], rel.Schema); fn != nil {
		t.Error("col-vs-col comparison must not vectorize")
	}
	if _, fn := vectorizePred(conjs[1], rel.Schema); fn == nil {
		t.Error("col-vs-literal comparison should vectorize")
	}
}

func TestShuffleBroadcastThresholdBoundary(t *testing.T) {
	cat := shopCatalog()
	e := NewShuffle(cat, 4)
	e.Shuffle.BroadcastThreshold = 3 // nation (3 rows) broadcasts exactly
	if _, err := e.Query("SELECT cname, nname FROM cust, nation WHERE cnation = nkey"); err != nil {
		t.Fatal(err)
	}
	if e.Stats.BroadcastRows != 3*3 { // 3 rows to each of the 3 other partitions
		t.Errorf("broadcast rows = %d, want 9", e.Stats.BroadcastRows)
	}
	if e.Stats.ShuffledRows != 0 {
		t.Errorf("shuffled rows = %d, want 0", e.Stats.ShuffledRows)
	}
}

func TestIndexBytesNeedsKeys(t *testing.T) {
	cat := relation.NewCatalog()
	r := relation.New("nokeys", relation.MustSchema(relation.Col("a", relation.KindInt)))
	r.MustAppend(relation.Int(1))
	cat.MustAdd(r)
	if IndexBytes(cat) != 0 {
		t.Error("no declared keys means no index bytes")
	}
}
