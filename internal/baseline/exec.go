package baseline

import (
	"sort"

	"repro/internal/relation"
	"repro/internal/sql"
)

// rowset is an intermediate result: rows of width columns with an
// alias.column -> slot binding.
type rowset struct {
	binding sql.Binding
	aliases []string
	width   int
	rows    []relation.Tuple
}

func (rs *rowset) byteSize() int64 {
	var n int64
	for _, t := range rs.rows {
		n += int64(t.Size())
	}
	return n
}

// equiPred is an a.x = b.y join predicate between current-block aliases.
type equiPred struct {
	la, ca string
	lb, cb string
}

// runBlock executes one SELECT block under an optional outer row env.
func (e *Engine) runBlock(an *sql.Analysis, blk *sql.Analyzed, outer *sql.Env) (*relation.Relation, error) {
	subq := e.subqueryFn(an)
	sel := blk.Sel

	hasOuter := false
	for _, fi := range sel.From {
		if fi.Join == sql.JoinLeft || fi.Join == sql.JoinRight || fi.Join == sql.JoinFull {
			hasOuter = true
		}
	}

	// Gather conjuncts: WHERE plus inner-join ON conditions.
	var conjs []sql.Expr
	conjs = append(conjs, sql.SplitConjuncts(sel.Where)...)
	for _, fi := range sel.From {
		if fi.Join == sql.JoinInner {
			conjs = append(conjs, sql.SplitConjuncts(fi.On)...)
		}
	}

	// Classify conjuncts.
	filters := map[string][]sql.Expr{}
	var residual []sql.Expr
	var equi []equiPred
	for _, c := range conjs {
		refs := aliasesOf(an, c, 0)
		switch len(refs) {
		case 0:
			residual = append(residual, c) // constant or purely correlated
		case 1:
			if hasOuter {
				// WHERE filters must apply after NULL extension.
				residual = append(residual, c)
				continue
			}
			var alias string
			for a := range refs {
				alias = a
			}
			filters[alias] = append(filters[alias], c)
		default:
			if p, ok := asEquiPred(c); ok && !hasOuter {
				equi = append(equi, p)
			} else {
				residual = append(residual, c)
			}
		}
	}

	var joined *rowset
	var err error
	if hasOuter {
		joined, err = e.joinLeftDeep(an, blk, outer, subq)
	} else {
		joined, err = e.joinGreedy(an, blk, outer, subq, filters, equi, &residual)
	}
	if err != nil {
		return nil, err
	}

	// Apply remaining residual predicates.
	joined, err = e.filterRowset(joined, residual, outer, subq)
	if err != nil {
		return nil, err
	}

	return e.project(blk, joined, outer, subq)
}

// asEquiPred recognizes a.x = b.y between two distinct current-block
// aliases.
func asEquiPred(c sql.Expr) (equiPred, bool) {
	b, ok := c.(*sql.Binary)
	if !ok || b.Op != "=" {
		return equiPred{}, false
	}
	l, ok := b.L.(*sql.ColRef)
	if !ok || l.Depth != 0 {
		return equiPred{}, false
	}
	r, ok := b.R.(*sql.ColRef)
	if !ok || r.Depth != 0 || r.Alias == l.Alias {
		return equiPred{}, false
	}
	return equiPred{la: l.Alias, ca: l.Column, lb: r.Alias, cb: r.Column}, true
}

// scan materializes a base table as a rowset, applying pushed filters.
func (e *Engine) scan(bt sql.BoundTable, preds []sql.Expr, outer *sql.Env, subq sql.SubqueryFn) (*rowset, error) {
	rel := e.Cat.Get(bt.Table)
	binding := sql.Binding{}
	for i, col := range rel.Schema.Columns {
		binding[sql.BindKey(bt.Alias, col.Name)] = i
	}
	rs := &rowset{binding: binding, aliases: []string{bt.Alias}, width: rel.Schema.Len()}
	e.Stats.RowsScanned += int64(rel.Len())

	if e.ColumnStore {
		rows, rest, err := e.columnScan(rel, bt, preds, binding, outer, subq)
		if err != nil {
			return nil, err
		}
		rs.rows = rows
		preds = rest
	} else {
		rs.rows = rel.Tuples
	}

	if len(preds) == 0 {
		return rs, nil
	}
	return e.filterRowset(rs, preds, outer, subq)
}

// filterRowset keeps rows for which every predicate evaluates to TRUE.
func (e *Engine) filterRowset(rs *rowset, preds []sql.Expr, outer *sql.Env, subq sql.SubqueryFn) (*rowset, error) {
	if len(preds) == 0 {
		return rs, nil
	}
	out := &rowset{binding: rs.binding, aliases: rs.aliases, width: rs.width}
	env := &sql.Env{Binding: rs.binding, Parent: outer}
	for _, row := range rs.rows {
		env.Row = row
		keep := true
		for _, p := range preds {
			v, err := sql.Eval(p, env, subq)
			if err != nil {
				return nil, err
			}
			if !v.AsBool() {
				keep = false
				break
			}
		}
		if keep {
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// joinGreedy plans inner/comma joins: scan every table with pushed
// filters, then repeatedly hash-join the smallest connected input.
func (e *Engine) joinGreedy(an *sql.Analysis, blk *sql.Analyzed, outer *sql.Env, subq sql.SubqueryFn,
	filters map[string][]sql.Expr, equi []equiPred, residual *[]sql.Expr) (*rowset, error) {

	sets := map[string]*rowset{}
	for _, bt := range blk.Tables {
		rs, err := e.scan(bt, filters[bt.Alias], outer, subq)
		if err != nil {
			return nil, err
		}
		sets[bt.Alias] = rs
	}

	// Deterministic alias ordering for planning decisions.
	remaining := make([]string, 0, len(blk.Tables))
	for _, bt := range blk.Tables {
		remaining = append(remaining, bt.Alias)
	}
	sort.Slice(remaining, func(i, j int) bool {
		a, b := remaining[i], remaining[j]
		if len(sets[a].rows) != len(sets[b].rows) {
			return len(sets[a].rows) < len(sets[b].rows)
		}
		return a < b
	})

	cur := sets[remaining[0]]
	inSet := map[string]bool{remaining[0]: true}
	remaining = remaining[1:]

	for len(remaining) > 0 {
		// Pick the smallest remaining alias connected by an equi pred.
		pick := -1
		for i, a := range remaining {
			if connects(equi, inSet, a) {
				pick = i
				break
			}
		}
		cross := pick < 0
		if cross {
			pick = 0
		}
		alias := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		right := sets[alias]

		if cross {
			cur = e.crossJoin(cur, right)
		} else {
			var preds []equiPred
			for _, p := range equi {
				if inSet[p.la] && p.lb == alias {
					preds = append(preds, p)
				} else if inSet[p.lb] && p.la == alias {
					preds = append(preds, equiPred{la: p.lb, ca: p.cb, lb: p.la, cb: p.ca})
				}
			}
			cur = e.hashJoin(cur, right, preds)
		}
		inSet[alias] = true

		// Apply residuals that became evaluable.
		kept := (*residual)[:0]
		for _, r := range *residual {
			refs := aliasesOf(an, r, 0)
			ready := true
			for a := range refs {
				if !inSet[a] {
					ready = false
					break
				}
			}
			if ready && len(refs) > 0 {
				var err error
				cur, err = e.filterRowset(cur, []sql.Expr{r}, outer, subq)
				if err != nil {
					return nil, err
				}
			} else {
				kept = append(kept, r)
			}
		}
		*residual = kept
	}
	return cur, nil
}

func connects(equi []equiPred, inSet map[string]bool, alias string) bool {
	for _, p := range equi {
		if inSet[p.la] && p.lb == alias {
			return true
		}
		if inSet[p.lb] && p.la == alias {
			return true
		}
	}
	return false
}

// merge concatenates bindings and computes the combined rowset shell.
func mergeShells(l, r *rowset) *rowset {
	binding := sql.Binding{}
	for k, v := range l.binding {
		binding[k] = v
	}
	for k, v := range r.binding {
		binding[k] = v + l.width
	}
	aliases := append(append([]string{}, l.aliases...), r.aliases...)
	return &rowset{binding: binding, aliases: aliases, width: l.width + r.width}
}

// hashJoin joins l and r on the given equi predicates (left side of each
// pred references l). Shuffle accounting applies in shuffle mode.
func (e *Engine) hashJoin(l, r *rowset, preds []equiPred) *rowset {
	e.Stats.HashJoins++
	e.accountShuffle(l, r)

	lslots := make([]int, len(preds))
	rslots := make([]int, len(preds))
	for i, p := range preds {
		lslots[i] = l.binding[sql.BindKey(p.la, p.ca)]
		rslots[i] = r.binding[sql.BindKey(p.lb, p.cb)]
	}
	// Build on the smaller side.
	swapped := len(r.rows) > len(l.rows)
	build, probe := r, l
	bslots, pslots := rslots, lslots
	if swapped {
		build, probe = l, r
		bslots, pslots = lslots, rslots
	}
	table := make(map[string][]int, len(build.rows))
	key := make([]relation.Value, len(preds))
	for i, row := range build.rows {
		null := false
		for k, s := range bslots {
			if row[s].IsNull() {
				null = true
				break
			}
			key[k] = row[s]
		}
		if null {
			continue
		}
		ks := joinKey(key)
		table[ks] = append(table[ks], i)
	}

	out := mergeShells(l, r)
	for _, prow := range probe.rows {
		null := false
		for k, s := range pslots {
			if prow[s].IsNull() {
				null = true
				break
			}
			key[k] = prow[s]
		}
		if null {
			continue
		}
		for _, bi := range table[joinKey(key)] {
			brow := build.rows[bi]
			// Output rows are always l ++ r regardless of build side.
			if swapped { // build = l, probe = r
				out.rows = append(out.rows, brow.Concat(prow))
			} else { // build = r, probe = l
				out.rows = append(out.rows, prow.Concat(brow))
			}
		}
	}
	return out
}

// crossJoin is the Cartesian product fallback.
func (e *Engine) crossJoin(l, r *rowset) *rowset {
	e.Stats.NestedLoops++
	e.accountShuffle(l, r)
	out := mergeShells(l, r)
	for _, lrow := range l.rows {
		for _, rrow := range r.rows {
			out.rows = append(out.rows, lrow.Concat(rrow))
		}
	}
	return out
}

// accountShuffle records Spark-style exchange traffic for a join.
func (e *Engine) accountShuffle(l, r *rowset) {
	if e.Shuffle == nil {
		return
	}
	p := int64(e.Shuffle.Partitions)
	if p <= 1 {
		return
	}
	small, big := l, r
	if len(r.rows) < len(l.rows) {
		small, big = r, l
	}
	if len(small.rows) <= e.Shuffle.BroadcastThreshold {
		// Broadcast join: small side copied to every partition.
		e.Stats.BroadcastRows += int64(len(small.rows)) * (p - 1)
		e.Stats.BroadcastBytes += small.byteSize() * (p - 1)
		return
	}
	// Shuffle join: both sides re-partitioned; (p-1)/p of rows move.
	e.Stats.ShuffledRows += (int64(len(small.rows)) + int64(len(big.rows))) * (p - 1) / p
	e.Stats.ShuffledBytes += (small.byteSize() + big.byteSize()) * (p - 1) / p
}

// joinLeftDeep executes the FROM clause strictly in order, honoring outer
// join semantics; used whenever the query has LEFT/RIGHT/FULL joins.
func (e *Engine) joinLeftDeep(an *sql.Analysis, blk *sql.Analyzed, outer *sql.Env, subq sql.SubqueryFn) (*rowset, error) {
	var cur *rowset
	for i, fi := range blk.Sel.From {
		bt := blk.Tables[i]
		right, err := e.scan(bt, nil, outer, subq)
		if err != nil {
			return nil, err
		}
		if cur == nil {
			cur = right
			continue
		}
		switch fi.Join {
		case sql.JoinComma:
			cur = e.crossJoin(cur, right)
		case sql.JoinInner:
			cur, err = e.joinOn(cur, right, fi.On, an, outer, subq, false, false)
		case sql.JoinLeft:
			cur, err = e.joinOn(cur, right, fi.On, an, outer, subq, true, false)
		case sql.JoinRight:
			cur, err = e.joinOn(cur, right, fi.On, an, outer, subq, false, true)
		case sql.JoinFull:
			cur, err = e.joinOn(cur, right, fi.On, an, outer, subq, true, true)
		}
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// joinOn joins cur with right on an arbitrary ON expression, using hash
// lookup for its equi conjuncts and row evaluation for the rest.
// leftOuter/rightOuter select the NULL-extension sides.
func (e *Engine) joinOn(l, r *rowset, on sql.Expr, an *sql.Analysis, outer *sql.Env, subq sql.SubqueryFn, leftOuter, rightOuter bool) (*rowset, error) {
	e.Stats.HashJoins++
	e.accountShuffle(l, r)

	var hashPreds []equiPred
	var rest []sql.Expr
	for _, c := range sql.SplitConjuncts(on) {
		if p, ok := asEquiPred(c); ok {
			// Normalize: la on left rowset.
			if contains(l.aliases, p.la) && contains(r.aliases, p.lb) {
				hashPreds = append(hashPreds, p)
				continue
			}
			if contains(l.aliases, p.lb) && contains(r.aliases, p.la) {
				hashPreds = append(hashPreds, equiPred{la: p.lb, ca: p.cb, lb: p.la, cb: p.ca})
				continue
			}
		}
		rest = append(rest, c)
	}

	out := mergeShells(l, r)
	env := &sql.Env{Binding: out.binding, Parent: outer}

	matchedRight := make([]bool, len(r.rows))
	rslots := make([]int, len(hashPreds))
	lslots := make([]int, len(hashPreds))
	for i, p := range hashPreds {
		lslots[i] = l.binding[sql.BindKey(p.la, p.ca)]
		rslots[i] = r.binding[sql.BindKey(p.lb, p.cb)]
	}

	// Build hash on right side (or all rows if no equi preds).
	table := map[string][]int{}
	key := make([]relation.Value, len(hashPreds))
	for i, row := range r.rows {
		null := false
		for k, s := range rslots {
			if row[s].IsNull() {
				null = true
				break
			}
			key[k] = row[s]
		}
		if null {
			continue
		}
		ks := joinKey(key)
		table[ks] = append(table[ks], i)
	}

	nullRight := make(relation.Tuple, r.width)
	nullLeft := make(relation.Tuple, l.width)

	for _, lrow := range l.rows {
		matched := false
		var candidates []int
		null := false
		for k, s := range lslots {
			if lrow[s].IsNull() {
				null = true
				break
			}
			key[k] = lrow[s]
		}
		if !null {
			if len(hashPreds) > 0 {
				candidates = table[joinKey(key)]
			} else {
				candidates = allIndexes(len(r.rows))
			}
		}
		for _, ri := range candidates {
			joinedRow := lrow.Concat(r.rows[ri])
			ok := true
			for _, c := range rest {
				env.Row = joinedRow
				v, err := sql.Eval(c, env, subq)
				if err != nil {
					return nil, err
				}
				if !v.AsBool() {
					ok = false
					break
				}
			}
			if ok {
				matched = true
				matchedRight[ri] = true
				out.rows = append(out.rows, joinedRow)
			}
		}
		if !matched && leftOuter {
			out.rows = append(out.rows, lrow.Concat(nullRight))
		}
	}
	if rightOuter {
		for ri, m := range matchedRight {
			if !m {
				out.rows = append(out.rows, nullLeft.Concat(r.rows[ri]))
			}
		}
	}
	return out, nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func allIndexes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// project applies grouping, aggregation, HAVING, the SELECT list and
// DISTINCT to the joined rowset.
func (e *Engine) project(blk *sql.Analyzed, rs *rowset, outer *sql.Env, subq sql.SubqueryFn) (*relation.Relation, error) {
	sel := blk.Sel
	schema := blk.OutputSchema()
	out := relation.New("result", schema)

	if !blk.HasAgg && len(sel.GroupBy) == 0 {
		env := &sql.Env{Binding: rs.binding, Parent: outer}
		for _, row := range rs.rows {
			env.Row = row
			t := make(relation.Tuple, len(sel.Items))
			for i, item := range sel.Items {
				v, err := sql.Eval(item.Expr, env, subq)
				if err != nil {
					return nil, err
				}
				t[i] = v
			}
			out.Tuples = append(out.Tuples, t)
		}
		return distinct(out, sel.Distinct), nil
	}

	// Aggregate slot assignment by pointer identity.
	slots := map[*sql.FuncCall]int{}
	for _, f := range blk.Aggregates {
		if _, ok := slots[f]; !ok {
			slots[f] = len(slots)
		}
	}
	slotOf := func(f *sql.FuncCall) int { return slots[f] }
	items := make([]sql.Expr, len(sel.Items))
	for i, it := range sel.Items {
		items[i] = sql.RewriteAggregates(it.Expr, slotOf)
	}
	having := sql.RewriteAggregates(sel.Having, slotOf)

	aggList := make([]*sql.FuncCall, len(slots))
	for f, s := range slots {
		aggList[s] = f
	}

	type group struct {
		rep  relation.Tuple
		aggs []*sql.Aggregator
	}
	groups := map[string]*group{}
	var order []string

	env := &sql.Env{Binding: rs.binding, Parent: outer}
	keyVals := make([]relation.Value, len(sel.GroupBy))
	for _, row := range rs.rows {
		env.Row = row
		for i, g := range sel.GroupBy {
			v, err := sql.Eval(g, env, subq)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
		}
		ks := joinKey(keyVals)
		grp := groups[ks]
		if grp == nil {
			grp = &group{rep: row, aggs: make([]*sql.Aggregator, len(aggList))}
			for i, f := range aggList {
				grp.aggs[i] = sql.NewAggregator(f)
			}
			groups[ks] = grp
			order = append(order, ks)
		}
		for i, f := range aggList {
			var v relation.Value
			if f.Star {
				v = relation.Int(1)
			} else {
				var err error
				v, err = sql.Eval(f.Args[0], env, subq)
				if err != nil {
					return nil, err
				}
			}
			grp.aggs[i].Observe(v)
		}
	}

	// Scalar aggregation over an empty input still yields one row.
	if len(sel.GroupBy) == 0 && len(groups) == 0 {
		grp := &group{rep: make(relation.Tuple, rs.width), aggs: make([]*sql.Aggregator, len(aggList))}
		for i, f := range aggList {
			grp.aggs[i] = sql.NewAggregator(f)
		}
		groups[""] = grp
		order = append(order, "")
	}

	for _, ks := range order {
		grp := groups[ks]
		genv := &sql.Env{Binding: rs.binding, Row: grp.rep, Parent: outer,
			Aggs: make([]relation.Value, len(aggList))}
		for i, a := range grp.aggs {
			genv.Aggs[i] = a.Result()
		}
		if having != nil {
			v, err := sql.Eval(having, genv, subq)
			if err != nil {
				return nil, err
			}
			if !v.AsBool() {
				continue
			}
		}
		t := make(relation.Tuple, len(items))
		for i, it := range items {
			v, err := sql.Eval(it, genv, subq)
			if err != nil {
				return nil, err
			}
			t[i] = v
		}
		out.Tuples = append(out.Tuples, t)
	}
	return distinct(out, sel.Distinct), nil
}

// distinct removes duplicate tuples when enabled.
func distinct(r *relation.Relation, enabled bool) *relation.Relation {
	if !enabled {
		return r
	}
	seen := map[string]bool{}
	kept := r.Tuples[:0]
	for _, t := range r.Tuples {
		k := joinKey(t)
		if !seen[k] {
			seen[k] = true
			kept = append(kept, t)
		}
	}
	r.Tuples = kept
	return r
}
