package codec

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestFrameRoundTrip: WriteFrame and FinishFrame produce identical
// bytes, and ReadFrame returns the payload with the exact frame size.
func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("the quick brown fox")

	var streamed bytes.Buffer
	if err := WriteFrame(&streamed, payload); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, HeaderSize, HeaderSize+len(payload))
	buf = append(buf, payload...)
	if err := FinishFrame(buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), buf) {
		t.Fatalf("WriteFrame and FinishFrame disagree:\n %x\n %x", streamed.Bytes(), buf)
	}

	got, n, err := ReadFrame(bufio.NewReader(&streamed))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) || n != int64(HeaderSize+len(payload)) {
		t.Fatalf("ReadFrame = %q (%d bytes), want %q (%d)", got, n, payload, HeaderSize+len(payload))
	}
}

// TestFrameCorruption: a torn header, torn payload, or flipped bit all
// surface as ErrCorrupt; a clean end of input is io.EOF.
func TestFrameCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("payload bytes here")); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()

	cases := map[string][]byte{
		"torn header":  frame[:HeaderSize-2],
		"torn payload": frame[:len(frame)-3],
		"flipped bit":  append(append([]byte(nil), frame[:len(frame)-1]...), frame[len(frame)-1]^0xff),
		"zero length":  make([]byte, HeaderSize),
	}
	for name, data := range cases {
		if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(data))); !errors.Is(err, ErrCorrupt) {
			t.Errorf("ReadFrame(%s) err = %v, want ErrCorrupt", name, err)
		}
		if _, err := SkipFrame(bufio.NewReader(bytes.NewReader(data)), make([]byte, 7)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("SkipFrame(%s) err = %v, want ErrCorrupt", name, err)
		}
	}
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(nil))); err != io.EOF {
		t.Errorf("ReadFrame(empty) err = %v, want io.EOF", err)
	}

	// An oversized length prefix is rejected before any allocation.
	huge := make([]byte, HeaderSize)
	binary.LittleEndian.PutUint32(huge, MaxFrameBytes+1)
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(huge))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("ReadFrame(oversized) err = %v, want ErrCorrupt", err)
	}
}

// TestScanValidPrefix: the scan stops at the first torn or corrupt
// frame and reports the byte length of the valid prefix only.
func TestScanValidPrefix(t *testing.T) {
	var buf bytes.Buffer
	sizes := []int{1, 100<<10 + 3, 17} // spans multiple SkipFrame chunks
	var want int64
	for i, n := range sizes {
		payload := bytes.Repeat([]byte{byte(i + 1)}, n)
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatal(err)
		}
		want += int64(HeaderSize + n)
	}
	got, err := ScanValidPrefix(bytes.NewReader(buf.Bytes()))
	if err != nil || got != want {
		t.Fatalf("ScanValidPrefix(clean) = %d, %v; want %d", got, err, want)
	}

	// Tear the last frame: the scan backs up to the end of frame 2.
	torn := buf.Bytes()[:buf.Len()-5]
	got, err = ScanValidPrefix(bytes.NewReader(torn))
	if err != nil || got != want-int64(HeaderSize+sizes[2]) {
		t.Fatalf("ScanValidPrefix(torn) = %d, %v; want %d", got, err, want-int64(HeaderSize+sizes[2]))
	}
}

// TestDecoder: every accessor round-trips its encoder counterpart, and
// Finish demands exact consumption.
func TestDecoder(t *testing.T) {
	var b []byte
	b = binary.AppendUvarint(b, 300)
	b = binary.AppendVarint(b, -7)
	b = AppendString(b, "hello")
	b = append(b, 0xAB)
	b = AppendString(b, "")

	d := NewDecoder(b)
	if v, err := d.Uvarint(); err != nil || v != 300 {
		t.Fatalf("Uvarint = %d, %v", v, err)
	}
	if v, err := d.Varint(); err != nil || v != -7 {
		t.Fatalf("Varint = %d, %v", v, err)
	}
	if s, err := d.Str(); err != nil || s != "hello" {
		t.Fatalf("Str = %q, %v", s, err)
	}
	if err := d.Finish(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Finish with bytes remaining = %v, want ErrCorrupt", err)
	}
	if v, err := d.Byte(); err != nil || v != 0xAB {
		t.Fatalf("Byte = %x, %v", v, err)
	}
	if s, err := d.Str(); err != nil || s != "" {
		t.Fatalf("Str(empty) = %q, %v", s, err)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish = %v", err)
	}

	// Out-of-bounds reads are ErrCorrupt, not panics.
	if _, err := d.Uvarint(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Uvarint past end = %v", err)
	}
	if _, err := d.Take(1); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Take past end = %v", err)
	}
	// A length the payload cannot back is corruption.
	d2 := NewDecoder(binary.AppendUvarint(nil, 1<<40))
	if _, err := d2.Length(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Length(absurd) = %v, want ErrCorrupt", err)
	}
}

func TestCapHint(t *testing.T) {
	if CapHint(10) != 10 || CapHint(1<<30) != maxCapHint {
		t.Fatalf("CapHint miscaps: %d %d", CapHint(10), CapHint(1<<30))
	}
}

// TestWriteFileAtomic: the target appears complete, and no temp files
// survive a successful write.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	want := []byte("atomic contents")
	if err := WriteFileAtomic(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("read back %q, %v", got, err)
	}
	// Overwrite is atomic too.
	if err := WriteFileAtomic(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "out.bin" {
		t.Fatalf("stray files after atomic writes: %v", entries)
	}
}
