// Package codec is the shared on-disk framing and varint-decode
// substrate of the durability layer. The write-ahead log and the
// checkpoint files use the same frame discipline:
//
//	uint32  payload length (little-endian)
//	uint32  CRC-32C (Castagnoli) of the payload
//	bytes   payload
//
// A frame is valid only if it is complete and its CRC matches, so a
// crash mid-write (a torn tail) is detected, not consumed: readers
// report ErrCorrupt at the first invalid frame and trust everything
// before it. The length prefix is capacity-capped (MaxFrameBytes)
// before any payload is read into memory, so a corrupt-but-plausible
// header cannot demand an unbounded allocation.
//
// The package also carries the bounds-checked payload cursor (Decoder)
// and the atomic-file helpers (temp + fsync + rename + dir fsync) that
// both consumers share. It has no dependencies inside the repo, so any
// layer may use it.
package codec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

const (
	// HeaderSize is the fixed per-frame header: payload length + CRC.
	HeaderSize = 8
	// MaxFrameBytes bounds a length prefix before the payload is read
	// into memory. One WAL record is one publish cycle and one
	// checkpoint frame is one bounded chunk; 256MB is far beyond either
	// while keeping the worst-case read of a corrupt-but-plausible
	// header modest.
	MaxFrameBytes = 256 << 20
	// maxCapHint caps the capacity pre-allocated from a decoded element
	// count. Counts are validated against the payload's remaining bytes,
	// but in-memory elements are up to ~64x larger than their minimal
	// encoding — so slices grow by append (bounded by the bytes actually
	// present) instead of trusting the count up front.
	maxCapHint = 4096
)

// CapHint bounds an up-front slice capacity taken from decoded input.
func CapHint(n int) int {
	if n > maxCapHint {
		return maxCapHint
	}
	return n
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks an incomplete or corrupt frame: the point where a
// crash (or bit rot) interrupted a write. Everything before it is
// trustworthy; nothing at or after it is.
var ErrCorrupt = errors.New("codec: torn or corrupt frame")

// FinishFrame fills in the HeaderSize bytes reserved at the front of
// buf, framing buf[HeaderSize:] as the payload. Writers that build
// header and payload in one buffer (the WAL) use this to emit the whole
// frame with a single write call.
func FinishFrame(buf []byte) error {
	if len(buf) < HeaderSize {
		return fmt.Errorf("codec: frame buffer of %d bytes has no header room", len(buf))
	}
	payload := buf[HeaderSize:]
	if len(payload) == 0 || len(payload) > MaxFrameBytes {
		return fmt.Errorf("codec: frame payload of %d bytes outside (0, %d]", len(payload), MaxFrameBytes)
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	return nil
}

// WriteFrame writes one complete frame (header + payload) to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) == 0 || len(payload) > MaxFrameBytes {
		return fmt.Errorf("codec: frame payload of %d bytes outside (0, %d]", len(payload), MaxFrameBytes)
	}
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed, CRC-checked payload. io.EOF
// means a clean end of input; ErrCorrupt means an incomplete or corrupt
// frame starts here.
func ReadFrame(br *bufio.Reader) ([]byte, int64, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, 0, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, ErrCorrupt
		}
		return nil, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if n == 0 || n > MaxFrameBytes {
		return nil, 0, ErrCorrupt
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, ErrCorrupt
		}
		return nil, 0, err
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, 0, ErrCorrupt
	}
	return payload, int64(HeaderSize) + int64(n), nil
}

// SkipFrame validates one frame (length prefix + CRC) while streaming
// the payload through the reused buffer buf — measuring a large file
// never materializes its contents.
func SkipFrame(br *bufio.Reader, buf []byte) (int64, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, ErrCorrupt
		}
		return 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if n == 0 || n > MaxFrameBytes {
		return 0, ErrCorrupt
	}
	var crc uint32
	for remaining := int(n); remaining > 0; {
		chunk := buf
		if remaining < len(chunk) {
			chunk = chunk[:remaining]
		}
		if _, err := io.ReadFull(br, chunk); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return 0, ErrCorrupt
			}
			return 0, err
		}
		crc = crc32.Update(crc, castagnoli, chunk)
		remaining -= len(chunk)
	}
	if crc != want {
		return 0, ErrCorrupt
	}
	return int64(HeaderSize) + int64(n), nil
}

// ScanValidPrefix returns the byte length of the longest valid frame
// prefix of r (read from its current position). It checks frames and
// CRCs only — no payload decoding — so measuring a large file costs one
// sequential read, not a full materialization of its contents.
func ScanValidPrefix(r io.Reader) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var off int64
	buf := make([]byte, 64<<10)
	for {
		n, err := SkipFrame(br, buf)
		switch {
		case err == nil:
			off += n
		case errors.Is(err, io.EOF), errors.Is(err, ErrCorrupt):
			return off, nil
		default:
			return 0, err
		}
	}
}

// AppendString appends a uvarint-length-prefixed string to b.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Decoder is a bounds-checked cursor over one frame payload. Every
// accessor reports ErrCorrupt rather than reading past the payload; a
// CRC-valid payload that fails to decode is corruption-equivalent (only
// reachable through an encoder bug, not crash damage), so consumers
// treat the two identically.
type Decoder struct {
	b   []byte
	off int
}

// NewDecoder returns a cursor over b.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Uvarint decodes one unsigned varint.
func (d *Decoder) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	d.off += n
	return v, nil
}

// Varint decodes one signed (zigzag) varint.
func (d *Decoder) Varint() (int64, error) {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	d.off += n
	return v, nil
}

// Take returns the next n raw bytes (aliasing the payload, not a copy).
func (d *Decoder) Take(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.b) {
		return nil, ErrCorrupt
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out, nil
}

// Byte returns the next single byte.
func (d *Decoder) Byte() (byte, error) {
	b, err := d.Take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// Length reads a collection length and sanity-bounds it against the
// bytes remaining — every element consumes at least one payload byte,
// so a count the payload cannot back is corruption. (Allocation is
// separately capped via CapHint: decoded elements can be ~64x larger in
// memory than on disk, so counts are never trusted for up-front make
// sizes.)
func (d *Decoder) Length() (int, error) {
	v, err := d.Uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(d.b)-d.off) {
		return 0, ErrCorrupt
	}
	return int(v), nil
}

// Str decodes one uvarint-length-prefixed string.
func (d *Decoder) Str() (string, error) {
	n, err := d.Length()
	if err != nil {
		return "", err
	}
	b, err := d.Take(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Remaining returns the number of undecoded payload bytes.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

// Finish reports ErrCorrupt unless the payload was consumed exactly —
// trailing garbage inside a CRC-valid frame is an encoder/decoder
// mismatch, never acceptable silently.
func (d *Decoder) Finish() error {
	if d.off != len(d.b) {
		return ErrCorrupt
	}
	return nil
}

// SyncDir fsyncs a directory, making its entries durable. fsyncing file
// data does nothing for a dirent the journal never flushed — a power
// loss could otherwise drop a just-renamed file wholesale.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// WriteFileAtomic writes data so a crash leaves either no file or the
// complete one: temp file in the same dir, fsync, rename over the
// target, fsync the directory.
func WriteFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return SyncDir(filepath.Dir(path))
}
